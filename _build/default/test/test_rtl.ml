open Hft_cdfg
open Hft_hls
open Hft_rtl

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let default_resources =
  [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1); (Op.Logic_unit, 1) ]

let conventional name =
  Datapath_gen.conventional ~width:8 ~resources:default_resources
    (Bench_suite.by_name name)

let fig1_datapath which =
  Hft_core.Fig1_exp.datapath
    (match which with `B -> Hft_core.Fig1_exp.B | `C -> Hft_core.Fig1_exp.C)

(* ------------------------------------------------------------------ *)
(* Datapath queries                                                   *)
(* ------------------------------------------------------------------ *)

let test_datapath_queries () =
  let d = conventional "diffeq" in
  check "has registers" true (Datapath.n_regs d > 0);
  check "has fus" true (Datapath.n_fus d > 0);
  check "inputs registered" true (List.length (Datapath.input_registers d) > 0);
  check "outputs registered" true (List.length (Datapath.output_registers d) > 0);
  (* Every FU's inputs and outputs are registers of the datapath. *)
  for f = 0 to Datapath.n_fus d - 1 do
    List.iter
      (fun r -> check "in range" true (r >= 0 && r < Datapath.n_regs d))
      (Datapath.fu_input_regs d f @ Datapath.fu_output_regs d f)
  done

let test_datapath_validate_catches () =
  let d = conventional "tseng" in
  let bad =
    { d with
      Datapath.transfers =
        (0, Datapath.Move { src = Datapath.Sreg 0; dst = 999 })
        :: d.Datapath.transfers }
  in
  check "dangling register caught" true
    (match Datapath.validate bad with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_self_adjacent_diffeq () =
  (* diffeq with merged state registers: xl shares x's register and xl =
     x + dx on an ALU whose input includes that register -> self
     adjacency is expected in a conventional datapath. *)
  let d = conventional "diffeq" in
  check "self-adjacent registers exist" true
    (List.length (Datapath.self_adjacent_regs d) > 0)

(* ------------------------------------------------------------------ *)
(* S-graph                                                            *)
(* ------------------------------------------------------------------ *)

let test_sgraph_fig1_b () =
  let _, d = fig1_datapath `B in
  let s = Sgraph.of_datapath d in
  let nt = Sgraph.nontrivial_loops s in
  check "assignment loop exists in (b)" true (List.length nt > 0);
  (* The paper's loop has length 2: RA1 -> RA2 -> RA1. *)
  check "a 2-loop" true (List.exists (fun l -> List.length l = 2) nt);
  (* One scanned register suffices to break it. *)
  let scan = Sgraph.scan_selection s in
  check_int "one scan register" 1 (List.length scan);
  check "loop-free after scan" true (Sgraph.is_loop_free s ~scanned:scan)

let test_sgraph_fig1_c () =
  let _, d = fig1_datapath `C in
  let s = Sgraph.of_datapath d in
  check_int "no nontrivial loops in (c)" 0
    (List.length (Sgraph.nontrivial_loops s));
  check "self-loops tolerated" true (List.length (Sgraph.self_loop_regs s) >= 1);
  check_int "no scan registers needed" 0 (List.length (Sgraph.scan_selection s))

let test_sgraph_diffeq_loops () =
  let d = conventional "diffeq" in
  let s = Sgraph.of_datapath d in
  check "diffeq datapath has loops" true
    (List.length (Sgraph.loops s) > 0);
  let scan = Sgraph.scan_selection s in
  check "scan breaks all" true (Sgraph.is_loop_free s ~scanned:scan)

let test_sequential_depth () =
  let d = conventional "tseng" in
  let s = Sgraph.of_datapath d in
  (match Sgraph.sequential_depth s ~scanned:[] with
   | Some depth -> check "tseng depth positive" true (depth >= 1)
   | None -> Alcotest.fail "tseng outputs unreachable");
  (* Scanning everything drives depth to 0. *)
  let all = List.init (Datapath.n_regs d) (fun i -> i) in
  (match Sgraph.sequential_depth s ~scanned:all with
   | Some depth -> check_int "full scan depth 0" 0 depth
   | None -> Alcotest.fail "full scan unreachable")

(* ------------------------------------------------------------------ *)
(* Controller                                                         *)
(* ------------------------------------------------------------------ *)

let test_controller_decode () =
  let d = conventional "diffeq" in
  let c = Controller.of_datapath d in
  check_int "states = steps + 1" (d.Datapath.n_steps + 1) c.Controller.n_states;
  check "has signals" true (List.length c.Controller.signals > 0);
  (* Every Exec in the transfer table shows up as an enable. *)
  List.iter
    (fun (step, m) ->
      match m with
      | Datapath.Exec e ->
        check "enable set" true
          (Controller.value c.Controller.vectors.(step)
             (Controller.Reg_enable e.dst) = 1)
      | Datapath.Move { dst; _ } ->
        check "move enable set" true
          (Controller.value c.Controller.vectors.(step)
             (Controller.Reg_enable dst) = 1))
    d.Datapath.transfers

let test_controller_unreachable_and_counts () =
  let d = conventional "diffeq" in
  let c = Controller.of_datapath d in
  (* Functional vectors are distinct states: count is bounded by
     n_states, and unreachable values exist (no state asserts every
     enable at once). *)
  check "n_vectors bounded" true (Controller.n_vectors c <= c.Controller.n_states);
  (* Every listed unreachable (signal, value) really appears in no
     vector — on these controllers single values are usually all
     reachable (the restriction lives in the combinations, i.e. the
     implications), so the list is typically empty. *)
  List.iter
    (fun (s, v) ->
      Array.iter
        (fun vec -> check "really unreachable" false (Controller.value vec s = v))
        c.Controller.vectors)
    (Controller.unreachable_values c);
  (* Adding a test vector can only grow the vector count. *)
  let tv = List.map (fun s -> (s, 1)) c.Controller.signals in
  let c' = Controller.add_test_vectors c [ tv ] in
  check "vector count grows" true
    (Controller.n_vectors c' >= Controller.n_vectors c)

let test_datapath_mux_legs_positive () =
  let d = conventional "diffeq" in
  check "shared datapath has mux legs" true (Datapath.mux_legs d > 0)

let test_controller_implications () =
  let d = conventional "diffeq" in
  let c = Controller.of_datapath d in
  let imps = Controller.implications c in
  check "functional vectors imply things" true (List.length imps > 0)

let test_controller_test_vectors_reduce_implications () =
  let d = conventional "diffeq" in
  let c = Controller.of_datapath d in
  let before = List.length (Controller.implications c) in
  (* A test vector asserting every enable with select 0 kills many
     enable-enable implications. *)
  let tv = List.map (fun s -> (s, match s with Controller.Reg_enable _ -> 1 | _ -> 0)) c.Controller.signals in
  let c' = Controller.add_test_vectors c [ tv ] in
  let after = List.length (Controller.implications c') in
  check "implications reduced" true (after < before)

(* ------------------------------------------------------------------ *)
(* RTL testability                                                    *)
(* ------------------------------------------------------------------ *)

let test_testability_ranges () =
  let d = conventional "tseng" in
  let s = Sgraph.of_datapath d in
  let reports = Testability.analyze s in
  check_int "one report per register" (Datapath.n_regs d)
    (List.length reports);
  (* Input registers are controllable in 0 cycles. *)
  List.iter
    (fun r ->
      let rep = List.nth reports r in
      check "input reg c-min 0" true (rep.Testability.control.min_cycles = Some 0))
    (Datapath.input_registers d)

let test_testability_loops_unbounded () =
  let d = conventional "diffeq" in
  let s = Sgraph.of_datapath d in
  let reports = Testability.analyze s in
  (* Registers inside loops have unbounded max control or observe. *)
  let unbounded =
    List.filter
      (fun r ->
        r.Testability.control.max_cycles = None
        || r.Testability.observe.max_cycles = None)
      reports
  in
  check "looped registers are unbounded" true (List.length unbounded > 0)

let test_scan_removes_hard_nodes () =
  let d = conventional "diffeq" in
  let s = Sgraph.of_datapath d in
  let scan = Testability.scan_for_hard_nodes ~threshold:3 s in
  let reports = Testability.analyze ~scanned:scan s in
  check_int "no hard nodes left" 0
    (List.length (Testability.hard_nodes ~threshold:3 reports))

(* ------------------------------------------------------------------ *)
(* K-level test points                                                *)
(* ------------------------------------------------------------------ *)

let test_klevel_k0_vs_scan () =
  let d = conventional "diffeq" in
  let s = Sgraph.of_datapath d in
  let r0 = Klevel.insert s ~k:0 in
  check "k=0 covers all loops" true (r0.Klevel.loops_covered = r0.Klevel.loops_total);
  check "k=0 needs test points" true (List.length r0.Klevel.test_points > 0)

let test_klevel_monotone () =
  let d = conventional "diffeq" in
  let s = Sgraph.of_datapath d in
  let sweep = Klevel.sweep s ~max_k:3 in
  let counts = List.map (fun r -> List.length r.Klevel.test_points) sweep in
  (* Larger k never needs more test points. *)
  let rec mono = function
    | a :: (b :: _ as tl) -> a >= b && mono tl
    | _ -> true
  in
  check "monotone decreasing" true (mono counts)

let test_klevel_covered () =
  let d = conventional "diffeq" in
  let s = Sgraph.of_datapath d in
  let r = Klevel.insert s ~k:1 in
  check "covered at k=1" true
    (Klevel.covered s ~k:1 ~test_points:r.Klevel.test_points)

(* ------------------------------------------------------------------ *)
(* Transparent scan                                                   *)
(* ------------------------------------------------------------------ *)

let test_tscan_covers () =
  List.iter
    (fun name ->
      let d = conventional name in
      let s = Sgraph.of_datapath d in
      let sel = Tscan.select s in
      if Sgraph.nontrivial_loops s <> [] then begin
        check (name ^ ": cover complete") true (Tscan.covered s sel);
        check (name ^ ": uses some cells") true (Tscan.n_cells sel > 0)
      end)
    [ "diffeq"; "ewf"; "iir4"; "ar_lattice" ]

let test_tscan_fewer_cells_than_scan () =
  List.iter
    (fun name ->
      let d = conventional name in
      let s = Sgraph.of_datapath d in
      let scan_only = List.length (Sgraph.scan_selection s) in
      let mixed = Tscan.n_cells (Tscan.select s) in
      check
        (Printf.sprintf "%s: mixed %d <= scan-only %d" name mixed scan_only)
        true (mixed <= scan_only))
    [ "diffeq"; "ewf"; "iir4"; "ar_lattice" ]

let test_tscan_empty_when_loop_free () =
  let d = conventional "tseng" in
  let s = Sgraph.of_datapath d in
  if Sgraph.nontrivial_loops s = [] then
    check_int "no cells when loop-free" 0 (Tscan.n_cells (Tscan.select s))

(* ------------------------------------------------------------------ *)
(* Area                                                               *)
(* ------------------------------------------------------------------ *)

let test_area_monotone_in_dft () =
  let d = conventional "diffeq" in
  let base = Area.datapath_area d in
  d.Datapath.regs.(0).Datapath.r_kind <- Datapath.Scan;
  let with_scan = Area.datapath_area d in
  check "scan costs area" true (with_scan > base);
  d.Datapath.regs.(0).Datapath.r_kind <- Datapath.Cbilbo;
  let with_cbilbo = Area.datapath_area d in
  check "cbilbo costs more than scan" true (with_cbilbo > with_scan);
  d.Datapath.regs.(0).Datapath.r_kind <- Datapath.Plain;
  check "overhead zero at base" true (abs_float (Area.overhead ~base d) < 1e-9)

let test_area_register_subset () =
  let d = conventional "ewf" in
  check "registers are part of total" true
    (Area.register_area d < Area.datapath_area d)

let () =
  Alcotest.run "hft_rtl"
    [
      ( "datapath",
        [
          Alcotest.test_case "queries" `Quick test_datapath_queries;
          Alcotest.test_case "validate catches" `Quick
            test_datapath_validate_catches;
          Alcotest.test_case "self-adjacency" `Quick test_self_adjacent_diffeq;
        ] );
      ( "sgraph",
        [
          Alcotest.test_case "fig1(b) assignment loop" `Quick test_sgraph_fig1_b;
          Alcotest.test_case "fig1(c) self-loops only" `Quick test_sgraph_fig1_c;
          Alcotest.test_case "diffeq loops" `Quick test_sgraph_diffeq_loops;
          Alcotest.test_case "sequential depth" `Quick test_sequential_depth;
        ] );
      ( "controller",
        [
          Alcotest.test_case "decode" `Quick test_controller_decode;
          Alcotest.test_case "unreachable/counts" `Quick
            test_controller_unreachable_and_counts;
          Alcotest.test_case "mux legs" `Quick test_datapath_mux_legs_positive;
          Alcotest.test_case "implications" `Quick test_controller_implications;
          Alcotest.test_case "test vectors help" `Quick
            test_controller_test_vectors_reduce_implications;
        ] );
      ( "testability",
        [
          Alcotest.test_case "ranges" `Quick test_testability_ranges;
          Alcotest.test_case "loops unbounded" `Quick
            test_testability_loops_unbounded;
          Alcotest.test_case "scan removes hard nodes" `Quick
            test_scan_removes_hard_nodes;
        ] );
      ( "klevel",
        [
          Alcotest.test_case "k0 vs scan" `Quick test_klevel_k0_vs_scan;
          Alcotest.test_case "monotone" `Quick test_klevel_monotone;
          Alcotest.test_case "covered" `Quick test_klevel_covered;
        ] );
      ( "tscan",
        [
          Alcotest.test_case "covers" `Quick test_tscan_covers;
          Alcotest.test_case "fewer cells" `Quick
            test_tscan_fewer_cells_than_scan;
          Alcotest.test_case "loop-free" `Quick test_tscan_empty_when_loop_free;
        ] );
      ( "area",
        [
          Alcotest.test_case "dft monotone" `Quick test_area_monotone_in_dft;
          Alcotest.test_case "registers subset" `Quick test_area_register_subset;
        ] );
    ]
