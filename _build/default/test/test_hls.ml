open Hft_cdfg
open Hft_hls

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Sched_algos                                                        *)
(* ------------------------------------------------------------------ *)

let test_asap_chain () =
  let g = Bench_suite.chain 5 in
  let s = Sched_algos.asap g in
  check_int "critical path 5" 5 s.Schedule.n_steps;
  check "valid" true (Schedule.is_valid g s)

let test_alap_slack () =
  let g = Bench_suite.tree 3 in
  (* 8 leaves -> 3 levels of adds: critical path 3. *)
  let asap = Sched_algos.asap g in
  check_int "tree depth" 3 asap.Schedule.n_steps;
  let alap = Sched_algos.alap g ~n_steps:5 in
  check "alap valid" true (Schedule.is_valid g alap);
  let mob = Sched_algos.mobility ~asap ~alap:(Sched_algos.alap g ~n_steps:3) in
  (* In a complete binary tree with uniform latency every op is critical. *)
  check "all critical" true (Array.for_all (fun m -> m = 0) mob)

let test_alap_below_cp_rejected () =
  let g = Bench_suite.chain 5 in
  check "below critical path rejected" true
    (match Sched_algos.alap g ~n_steps:4 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_mul_latency () =
  let g = Bench_suite.diffeq () in
  let lat = Sched_algos.latencies ~mul_latency:2 g in
  let s = Sched_algos.asap ~latency:lat g in
  check "valid with 2-cycle mult" true (Schedule.is_valid g s);
  (* Critical path: m1/m2 (2) -> m3 (2) -> s1 (1) -> ul (1) = 6. *)
  check_int "critical path grows" 6 s.Schedule.n_steps

let prop_alap_mobility_nonnegative =
  QCheck.Test.make ~name:"ALAP never precedes ASAP (mobility >= 0)"
    ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:3 ~n_ops:15 ~p_feedback:0.1 in
      let asap = Sched_algos.asap g in
      let alap = Sched_algos.alap g ~n_steps:(asap.Schedule.n_steps + 2) in
      Schedule.is_valid g alap
      && Array.for_all (fun m -> m >= 0)
           (Sched_algos.mobility ~asap
              ~alap:(Sched_algos.alap g ~n_steps:asap.Schedule.n_steps)))

let prop_more_resources_never_longer =
  QCheck.Test.make ~name:"adding units never lengthens the schedule"
    ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:3 ~n_ops:14 ~p_feedback:0.1 in
      let len k =
        (List_sched.schedule g ~resources:[ (Op.Multiplier, k); (Op.Alu, k) ])
          .Schedule.n_steps
      in
      len 2 >= len 3)

(* ------------------------------------------------------------------ *)
(* List_sched                                                         *)
(* ------------------------------------------------------------------ *)

let test_list_sched_respects_resources () =
  let g = Bench_suite.diffeq () in
  let resources = [ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1) ] in
  let s = List_sched.schedule g ~resources in
  check "valid" true (Schedule.is_valid g s);
  List.iter
    (fun (cl, n) ->
      check "within cap" true (n <= List.assoc cl resources))
    (Schedule.fu_demand g s)

let test_list_sched_tight_resources_stretch () =
  let g = Bench_suite.diffeq () in
  let loose =
    List_sched.schedule g
      ~resources:[ (Op.Multiplier, 6); (Op.Alu, 4); (Op.Comparator, 1) ]
  in
  let tight =
    List_sched.schedule g
      ~resources:[ (Op.Multiplier, 1); (Op.Alu, 1); (Op.Comparator, 1) ]
  in
  check "tight schedule is longer" true
    (tight.Schedule.n_steps > loose.Schedule.n_steps);
  check_int "loose matches critical path" (Sched_algos.critical_path g)
    loose.Schedule.n_steps

let test_list_sched_missing_class () =
  let g = Bench_suite.diffeq () in
  check "missing class rejected" true
    (match List_sched.schedule g ~resources:[ (Op.Alu, 2) ] with
     | _ -> false
     | exception Invalid_argument _ -> true)

let prop_list_sched_valid =
  QCheck.Test.make ~name:"list scheduling always yields valid schedules"
    ~count:100
    QCheck.(pair (int_bound 10000) (int_range 1 3))
    (fun (seed, cap) ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:4 ~n_ops:14 ~p_feedback:0.2 in
      let resources = [ (Op.Multiplier, cap); (Op.Alu, cap) ] in
      let s = List_sched.schedule g ~resources in
      Schedule.is_valid g s
      && List.for_all
           (fun (cl, n) -> n <= List.assoc cl resources)
           (Schedule.fu_demand g s))

(* ------------------------------------------------------------------ *)
(* Fu_bind                                                            *)
(* ------------------------------------------------------------------ *)

let test_bind_left_edge () =
  let g = Bench_suite.diffeq () in
  let resources = [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1) ] in
  let s = List_sched.schedule g ~resources in
  let b = Fu_bind.left_edge ~resources g s in
  Fu_bind.validate g s b;
  check "instance count within caps" true
    (Array.length b.Fu_bind.instances <= 5)

let test_bind_fig1 () =
  let g = Paper_fig1.graph () in
  let sb = Paper_fig1.schedule_b g in
  let bb = Fu_bind.of_class_indices g sb Paper_fig1.binding_b in
  Fu_bind.validate g sb bb;
  check_int "two adders" 2 (Array.length bb.Fu_bind.instances);
  let sc = Paper_fig1.schedule_c g in
  let bc = Fu_bind.of_class_indices g sc Paper_fig1.binding_c in
  Fu_bind.validate g sc bc;
  check_int "two adders (c)" 2 (Array.length bc.Fu_bind.instances)

let test_bind_overlap_rejected () =
  let g = Paper_fig1.graph () in
  let sb = Paper_fig1.schedule_b g in
  (* +2 and +3 both run in step 2: same instance must be rejected. *)
  check "overlap rejected" true
    (match Fu_bind.of_class_indices g sb [| 0; 0; 0; 1; 0 |] with
     | _ -> false
     | exception Invalid_argument _ -> true)

let prop_bind_validates =
  QCheck.Test.make ~name:"left-edge binding always validates" ~count:100
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:4 ~n_ops:12 ~p_feedback:0.1 in
      let s =
        List_sched.schedule g ~resources:[ (Op.Multiplier, 2); (Op.Alu, 2) ]
      in
      let b = Fu_bind.left_edge g s in
      match Fu_bind.validate g s b with () -> true)

(* ------------------------------------------------------------------ *)
(* Reg_alloc                                                          *)
(* ------------------------------------------------------------------ *)

let alloc_setup g resources =
  let s = List_sched.schedule g ~resources in
  let info = Lifetime.compute g s in
  (s, info)

let test_reg_alloc_left_edge () =
  let g = Bench_suite.diffeq () in
  let _, info =
    alloc_setup g [ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1) ]
  in
  let a = Reg_alloc.left_edge g info in
  Reg_alloc.validate g info a;
  check "some registers" true (a.Reg_alloc.n_regs > 0)

let test_reg_alloc_color_matches_left_edge_size () =
  let g = Bench_suite.ewf () in
  let _, info =
    alloc_setup g [ (Op.Multiplier, 2); (Op.Alu, 3) ]
  in
  let le = Reg_alloc.left_edge g info in
  let co = Reg_alloc.color g info in
  Reg_alloc.validate g info le;
  Reg_alloc.validate g info co;
  (* Greedy colouring in interval order equals left-edge for interval
     conflicts extended with final-write exclusions: allow slack 1. *)
  check "colour close to left-edge" true
    (abs (co.Reg_alloc.n_regs - le.Reg_alloc.n_regs) <= 1)

let test_reg_alloc_extra_conflicts () =
  let g = Bench_suite.diffeq () in
  let _, info =
    alloc_setup g [ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1) ]
  in
  let base = Reg_alloc.color g info in
  (* Forbid sharing between two variables that the base allocation put
     together, then check the constraint holds. *)
  let find_shared () =
    let n = Array.length base.Reg_alloc.reg_of_var in
    let found = ref None in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if !found = None && base.Reg_alloc.reg_of_var.(u) >= 0
           && base.Reg_alloc.reg_of_var.(u) = base.Reg_alloc.reg_of_var.(v)
           && not (Hft_util.Union_find.same info.Lifetime.merged u v)
        then found := Some (u, v)
      done
    done;
    !found
  in
  match find_shared () with
  | None -> () (* nothing shares: constraint trivially holds *)
  | Some (u, v) ->
    let a = Reg_alloc.color ~extra_conflicts:[ (u, v) ] g info in
    Reg_alloc.validate ~extra_conflicts:[ (u, v) ] g info a;
    check "extra conflict separates" true
      (a.Reg_alloc.reg_of_var.(u) <> a.Reg_alloc.reg_of_var.(v))

let prop_reg_alloc_valid =
  QCheck.Test.make ~name:"allocations always validate" ~count:100
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:4 ~n_ops:14 ~p_feedback:0.25 in
      let s =
        List_sched.schedule g ~resources:[ (Op.Multiplier, 2); (Op.Alu, 2) ]
      in
      let info = Lifetime.compute g s in
      let le = Reg_alloc.left_edge g info in
      let co = Reg_alloc.color g info in
      Reg_alloc.validate g info le;
      Reg_alloc.validate g info co;
      true)

(* ------------------------------------------------------------------ *)
(* Datapath_gen: the keystone equivalence                             *)
(* ------------------------------------------------------------------ *)

let default_resources =
  [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1); (Op.Logic_unit, 1) ]

let test_datapath_matches_behaviour () =
  let rng = Hft_util.Rng.create 2024 in
  List.iter
    (fun (name, g) ->
      let d =
        Datapath_gen.conventional ~width:16 ~resources:default_resources g
      in
      check (name ^ " datapath equivalent to behaviour") true
        (Datapath_gen.check_against_behaviour ~width:16 ~trials:25 rng g d))
    (Bench_suite.all ())

let test_datapath_fig1 () =
  let g = Paper_fig1.graph () in
  let s = Paper_fig1.schedule_b g in
  let b = Fu_bind.of_class_indices g s Paper_fig1.binding_b in
  let info = Lifetime.compute g s in
  let a = Reg_alloc.left_edge g info in
  let d = Datapath_gen.generate ~width:8 g s b a in
  let rng = Hft_util.Rng.create 7 in
  check "fig1(b) datapath equivalent" true
    (Datapath_gen.check_against_behaviour ~width:8 ~trials:25 rng g d)

let test_datapath_multicycle_mult () =
  let g = Bench_suite.diffeq () in
  let d =
    Datapath_gen.conventional ~width:16 ~mul_latency:2
      ~resources:default_resources g
  in
  let rng = Hft_util.Rng.create 5 in
  check "2-cycle multiplier datapath equivalent" true
    (Datapath_gen.check_against_behaviour ~width:16 ~trials:25 rng g d)

let prop_datapath_equivalence =
  QCheck.Test.make ~name:"random CDFG datapaths match behaviour" ~count:40
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:4 ~n_ops:10 ~p_feedback:0.2 in
      let d =
        Datapath_gen.conventional ~width:12
          ~resources:[ (Op.Multiplier, 2); (Op.Alu, 2) ]
          g
      in
      Datapath_gen.check_against_behaviour ~width:12 ~trials:10 rng g d)

(* ------------------------------------------------------------------ *)
(* Mobility_path                                                      *)
(* ------------------------------------------------------------------ *)

let test_mobility_path_valid () =
  let g = Bench_suite.diffeq () in
  let resources = [ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1) ] in
  let s = Mobility_path.schedule g ~resources in
  check "valid" true (Schedule.is_valid g s);
  List.iter
    (fun (cl, n) -> check "caps" true (n <= List.assoc cl resources))
    (Schedule.fu_demand g s)

let test_mobility_path_no_worse () =
  let g = Bench_suite.ewf () in
  let resources = [ (Op.Multiplier, 2); (Op.Alu, 3) ] in
  let base = List_sched.schedule g ~resources in
  let mp = Mobility_path.schedule g ~resources in
  check "sharable count not reduced" true
    (Mobility_path.io_sharable_count g mp
     >= Mobility_path.io_sharable_count g base)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hft_hls"
    [
      ( "sched_algos",
        [
          Alcotest.test_case "asap chain" `Quick test_asap_chain;
          Alcotest.test_case "alap slack" `Quick test_alap_slack;
          Alcotest.test_case "alap below cp" `Quick test_alap_below_cp_rejected;
          Alcotest.test_case "mult latency" `Quick test_mul_latency;
          qt prop_alap_mobility_nonnegative;
          qt prop_more_resources_never_longer;
        ] );
      ( "list_sched",
        [
          Alcotest.test_case "respects resources" `Quick
            test_list_sched_respects_resources;
          Alcotest.test_case "tight stretches" `Quick
            test_list_sched_tight_resources_stretch;
          Alcotest.test_case "missing class" `Quick test_list_sched_missing_class;
          qt prop_list_sched_valid;
        ] );
      ( "fu_bind",
        [
          Alcotest.test_case "left edge" `Quick test_bind_left_edge;
          Alcotest.test_case "fig1 bindings" `Quick test_bind_fig1;
          Alcotest.test_case "overlap rejected" `Quick test_bind_overlap_rejected;
          qt prop_bind_validates;
        ] );
      ( "reg_alloc",
        [
          Alcotest.test_case "left edge" `Quick test_reg_alloc_left_edge;
          Alcotest.test_case "colour vs left edge" `Quick
            test_reg_alloc_color_matches_left_edge_size;
          Alcotest.test_case "extra conflicts" `Quick
            test_reg_alloc_extra_conflicts;
          qt prop_reg_alloc_valid;
        ] );
      ( "datapath_gen",
        [
          Alcotest.test_case "benchmarks equivalent" `Quick
            test_datapath_matches_behaviour;
          Alcotest.test_case "fig1 binding" `Quick test_datapath_fig1;
          Alcotest.test_case "multicycle mult" `Quick
            test_datapath_multicycle_mult;
          qt prop_datapath_equivalence;
        ] );
      ( "mobility_path",
        [
          Alcotest.test_case "valid" `Quick test_mobility_path_valid;
          Alcotest.test_case "no worse sharing" `Quick
            test_mobility_path_no_worse;
        ] );
    ]
