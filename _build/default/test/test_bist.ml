open Hft_cdfg
open Hft_bist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let synth ?(width = 4)
    ?(resources =
      [ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1);
        (Op.Logic_unit, 1) ]) name =
  let g = Bench_suite.by_name name in
  let latency = Hft_hls.Sched_algos.latencies g in
  let sched = Hft_hls.List_sched.schedule ~latency g ~resources in
  let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
  let info = Lifetime.compute g sched in
  let alloc = Hft_hls.Reg_alloc.left_edge g info in
  let d = Hft_hls.Datapath_gen.generate ~width g sched binding alloc in
  (g, sched, binding, info, alloc, d)

(* ------------------------------------------------------------------ *)
(* Lfsr / Misr                                                        *)
(* ------------------------------------------------------------------ *)

let test_lfsr_maximal_period () =
  List.iter
    (fun w ->
      let l = Lfsr.create ~width:w ~seed:1 in
      check_int (Printf.sprintf "width %d period" w) ((1 lsl w) - 1)
        (Lfsr.period l))
    [ 2; 3; 4; 5; 6; 7; 8; 10; 12 ]

let test_lfsr_nonzero () =
  let l = Lfsr.create ~width:8 ~seed:0 in
  (* Zero seed replaced; state never returns to zero. *)
  for _ = 1 to 300 do
    check "state nonzero" true (Lfsr.state l <> 0);
    ignore (Lfsr.next l)
  done

let test_lfsr_deterministic () =
  let a = Lfsr.create ~width:10 ~seed:77 in
  let b = Lfsr.create ~width:10 ~seed:77 in
  for _ = 1 to 100 do
    check "same stream" true (Lfsr.next a = Lfsr.next b)
  done

let test_misr_distinguishes () =
  let s1 = List.init 50 (fun i -> i * 3) in
  let s2 = List.init 50 (fun i -> if i = 20 then 61 else i * 3) in
  check "equal streams equal signatures" true
    (Misr.of_stream ~width:12 s1 = Misr.of_stream ~width:12 s1);
  check "different streams differ (this pair)" true
    (Misr.of_stream ~width:12 s1 <> Misr.of_stream ~width:12 s2)

let prop_misr_order_sensitive =
  QCheck.Test.make ~name:"MISR signature depends on order" ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      Misr.of_stream ~width:16 [ a; b; 17 ]
      <> Misr.of_stream ~width:16 [ b; a; 17 ]
      || a land 0xFFFF = b land 0xFFFF)

(* ------------------------------------------------------------------ *)
(* Bilbo planning                                                     *)
(* ------------------------------------------------------------------ *)

let test_bilbo_plan_diffeq () =
  let _, _, _, _, _, d = synth "diffeq" in
  let p = Bilbo.plan d in
  check "some TPGRs" true
    (p.Bilbo.n_tpgr + p.Bilbo.n_bilbo + p.Bilbo.n_cbilbo > 0);
  (* Every FU with work has an SR assigned. *)
  Array.iteri
    (fun f sr ->
      if Hft_rtl.Datapath.fu_output_regs d f <> [] then
        check (Printf.sprintf "fu %d has SR" f) true (sr >= 0))
    p.Bilbo.sr_of_fu

let test_bilbo_annotate_area () =
  let _, _, _, _, _, d = synth "diffeq" in
  let p = Bilbo.plan d in
  let oh = Bilbo.area_overhead d p in
  check "positive overhead" true (oh > 0.0);
  check "sane overhead" true (oh < 0.5)

let test_bilbo_cbilbo_only_when_forced () =
  (* tseng has no feedback; with BIST-aware assignment CBILBOs should
     be avoidable entirely. *)
  let g = Bench_suite.tseng () in
  let resources = [ (Op.Multiplier, 1); (Op.Alu, 1); (Op.Comparator, 1); (Op.Logic_unit, 1) ] in
  let sched = Hft_hls.List_sched.schedule g ~resources in
  let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
  let info = Lifetime.compute g sched in
  let alloc = Reg_assign.bist_aware g sched binding info in
  let d = Hft_hls.Datapath_gen.generate ~width:4 g sched binding alloc in
  let p = Bilbo.plan d in
  check_int "no CBILBO needed on tseng" 0 p.Bilbo.n_cbilbo

(* ------------------------------------------------------------------ *)
(* BIST-aware register assignment                                     *)
(* ------------------------------------------------------------------ *)

let test_bist_aware_reduces_self_adjacency () =
  List.iter
    (fun name ->
      let g, sched, binding, info, conventional, _ = synth name in
      let aware = Reg_assign.bist_aware g sched binding info in
      let before = Reg_assign.self_adjacent_count g binding conventional in
      let after = Reg_assign.self_adjacent_count g binding aware in
      check (name ^ ": self-adjacency not increased") true (after <= before);
      (* Register count stays close (Avra reports equality on data
         paths with several ALUs; under extreme unit sharing — one ALU
         executing everything — a few extra registers are the price of
         avoiding CBILBOs). *)
      check (name ^ ": register count close") true
        (aware.Hft_hls.Reg_alloc.n_regs
         <= conventional.Hft_hls.Reg_alloc.n_regs + 4))
    [ "tseng"; "ewf"; "iir4" ]

let test_bist_aware_valid () =
  let g, sched, binding, info, _, _ = synth "ewf" in
  let aware = Reg_assign.bist_aware g sched binding info in
  let extra = Reg_assign.self_adjacency_conflicts g binding info in
  Hft_hls.Reg_alloc.validate ~extra_conflicts:extra g info aware

(* ------------------------------------------------------------------ *)
(* TFB / XTFB                                                         *)
(* ------------------------------------------------------------------ *)

let test_tfb_map () =
  let g = Bench_suite.ewf () in
  let sched =
    Hft_hls.List_sched.schedule g
      ~resources:[ (Op.Multiplier, 2); (Op.Alu, 3) ]
  in
  let r = Tfb.map g sched in
  check "TFBs created" true (r.Tfb.n_tfbs > 0);
  check "self-adjacency free" true (Tfb.self_adjacency_free g r);
  check_int "one register per TFB" r.Tfb.n_tfbs r.Tfb.n_test_registers;
  (* Every op with an FU class is mapped. *)
  Array.iteri
    (fun o t ->
      match Op.fu_class (Graph.op g o).Graph.o_kind with
      | Some _ -> check "mapped" true (t >= 0)
      | None -> check "moves unmapped" true (t = -1))
    r.Tfb.tfb_of_op

let test_xtfb_fewer_blocks () =
  List.iter
    (fun name ->
      let g = Bench_suite.by_name name in
      let sched =
        Hft_hls.List_sched.schedule g
          ~resources:
            [ (Op.Multiplier, 3); (Op.Alu, 3); (Op.Comparator, 1);
              (Op.Logic_unit, 1) ]
      in
      let t = Tfb.map g sched in
      let x = Xtfb.map g sched in
      check (name ^ ": xtfb no more blocks than tfb") true
        (x.Xtfb.n_xtfbs <= t.Tfb.n_tfbs);
      check (name ^ ": cbilbo free") true (Xtfb.cbilbo_free g x))
    [ "ewf"; "diffeq"; "iir4" ]

let prop_tfb_xtfb_invariants_random =
  QCheck.Test.make ~name:"TFB/XTFB invariants hold on random CDFGs" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:4 ~n_ops:12 ~p_feedback:0.2 in
      let sched =
        Hft_hls.List_sched.schedule g
          ~resources:[ (Op.Multiplier, 3); (Op.Alu, 3) ]
      in
      let t = Tfb.map g sched in
      let x = Xtfb.map g sched in
      Tfb.self_adjacency_free g t
      && Xtfb.cbilbo_free g x
      && x.Xtfb.n_xtfbs <= t.Tfb.n_tfbs)

let test_xtfb_area_lower () =
  let g = Bench_suite.ewf () in
  let sched =
    Hft_hls.List_sched.schedule g
      ~resources:[ (Op.Multiplier, 2); (Op.Alu, 3) ]
  in
  let t = Tfb.map g sched in
  let x = Xtfb.map g sched in
  check "xtfb area <= tfb area" true
    (Xtfb.area ~width:8 x <= Tfb.area ~width:8 t)

(* ------------------------------------------------------------------ *)
(* Sharing                                                            *)
(* ------------------------------------------------------------------ *)

let test_sharing_no_more_test_registers () =
  List.iter
    (fun name ->
      let g, sched, binding, info, _, d_conv = synth name in
      let aware = Share.sharing_aware g sched binding info in
      let d_aware =
        Hft_hls.Datapath_gen.generate ~width:4 g sched binding aware
      in
      let conv = Share.test_register_count d_conv in
      let shared = Share.test_register_count d_aware in
      check
        (Printf.sprintf "%s: sharing-aware %d <= conventional %d + 1" name
           shared conv)
        true
        (shared <= conv + 1))
    [ "diffeq"; "ewf"; "tseng" ]

(* ------------------------------------------------------------------ *)
(* Sessions                                                           *)
(* ------------------------------------------------------------------ *)

let test_sessions_bounds () =
  let _, _, _, _, _, d = synth "diffeq" in
  let p = Bilbo.plan d in
  let paths = Session.paths d p in
  let colours, n = Session.schedule paths in
  check "at least one session" true (n >= 1);
  check "no more sessions than paths" true (n <= max 1 (List.length paths));
  (* Colouring is proper. *)
  List.iteri
    (fun i ci ->
      List.iteri
        (fun j cj ->
          if i < j && Session.conflict (List.nth paths i) (List.nth paths j)
          then check "conflicting paths differ" true (ci <> cj))
        colours)
    colours

let test_sessions_optimize_no_worse () =
  List.iter
    (fun name ->
      let _, _, _, _, _, d = synth name in
      let p = Bilbo.plan d in
      let before = Session.count d p in
      let after = Session.count d (Session.optimize d p) in
      check (name ^ ": optimised sessions <= naive") true (after <= before))
    [ "diffeq"; "ewf"; "iir4" ]

let test_concurrency_aware_reduces_sessions () =
  let g, sched, binding, info, conv_alloc, d_conv = synth "fir8" in
  let plan = Bilbo.plan d_conv in
  let before = Session.count d_conv plan in
  let alloc = Session.concurrency_aware_alloc g binding info in
  Hft_hls.Reg_alloc.validate g info alloc;
  let d' = Hft_hls.Datapath_gen.generate ~width:4 g sched binding alloc in
  let after = Session.count d' (Bilbo.plan d') in
  check "sessions reduced or equal" true (after <= before);
  check "register cost is the trade-off" true
    (alloc.Hft_hls.Reg_alloc.n_regs >= conv_alloc.Hft_hls.Reg_alloc.n_regs);
  (* The anti-shared datapath still computes the right thing. *)
  let rng = Hft_util.Rng.create 13 in
  check "still equivalent" true
    (Hft_hls.Datapath_gen.check_against_behaviour ~width:4 ~trials:10 rng g d')

let test_sessions_disjoint_paths_share () =
  (* Two disjoint blocks: one session. *)
  let a = { Session.fu = 0; tpgrs = [ 0; 1 ]; sr = 2 } in
  let b = { Session.fu = 1; tpgrs = [ 3; 4 ]; sr = 5 } in
  let _, n = Session.schedule [ a; b ] in
  check_int "one session" 1 n;
  let c = { Session.fu = 2; tpgrs = [ 2; 6 ]; sr = 7 } in
  let _, n' = Session.schedule [ a; c ] in
  check_int "shared register forces two" 2 n'

(* ------------------------------------------------------------------ *)
(* Arithmetic BIST                                                    *)
(* ------------------------------------------------------------------ *)

let test_arith_full_sweep () =
  let g = Arith.create ~width:6 ~seed:5 ~increment:7 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 64 do
    Hashtbl.replace seen (Arith.next g) ()
  done;
  check_int "odd increment sweeps the space" 64 (Hashtbl.length seen)

let test_subspace_coverage () =
  let full = List.init 64 (fun i -> (i mod 8, i / 8)) in
  check "full coverage" true
    (abs_float (Arith.subspace_coverage ~k:3 full -. 1.0) < 1e-9);
  let poor = List.init 64 (fun _ -> (0, 0)) in
  check "poor coverage" true (Arith.subspace_coverage ~k:3 poor < 0.02)

let test_op_streams () =
  let g = Bench_suite.tseng () in
  let streams = Arith.op_streams ~width:6 ~samples:32 ~seed:3 g in
  check_int "stream per op" (Graph.n_ops g) (List.length streams);
  List.iter
    (fun (_, s) -> check_int "32 samples" 32 (List.length s))
    streams

let test_coverage_bind_valid () =
  let g = Bench_suite.ewf () in
  let resources = [ (Op.Multiplier, 2); (Op.Alu, 3) ] in
  let sched = Hft_hls.List_sched.schedule g ~resources in
  let b = Arith.coverage_bind ~resources ~width:6 ~samples:24 ~seed:1 g sched in
  Hft_hls.Fu_bind.validate g sched b

let test_compact_sensitivity () =
  let s1 = List.init 30 (fun i -> i * 5) in
  let s2 = List.init 30 (fun i -> if i = 7 then 99 else i * 5) in
  check "compactor distinguishes (this pair)" true
    (Arith.compact ~width:8 s1 <> Arith.compact ~width:8 s2)

(* ------------------------------------------------------------------ *)
(* In-situ BIST                                                       *)
(* ------------------------------------------------------------------ *)

let insitu_setup () =
  let g = Bench_suite.tseng () in
  let resources =
    [ (Op.Multiplier, 1); (Op.Alu, 1); (Op.Comparator, 1);
      (Op.Logic_unit, 1) ]
  in
  let sched = Hft_hls.List_sched.schedule g ~resources in
  let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
  let info = Lifetime.compute g sched in
  let alloc = Hft_hls.Reg_alloc.left_edge g info in
  let d = Hft_hls.Datapath_gen.generate ~width:4 g sched binding alloc in
  let ex = Hft_gate.Expand.of_datapath d in
  let plan = Bilbo.plan d in
  (g, d, ex, plan)

let test_insitu_functional_transparency () =
  (* bist_mode = 0 leaves the expansion functionally intact. *)
  let g, d, ex, plan = insitu_setup () in
  let t = Insitu.insert ex d plan in
  ignore t;
  let rng = Hft_util.Rng.create 4 in
  for _ = 1 to 5 do
    let inputs =
      List.map
        (fun v -> (v.Graph.v_name, Hft_util.Rng.int rng 16))
        (Graph.inputs g)
    in
    let rtl_outs, _ = Hft_rtl.Datapath.simulate d ~inputs () in
    (* run_iteration drives only the declared control/data PIs; the new
       bist pins default to 0 = functional mode. *)
    let gate_outs = Hft_gate.Expand.run_iteration d ex ~inputs () in
    List.iter
      (fun (name, v) ->
        check ("functional " ^ name) true (List.assoc name gate_outs = v))
      rtl_outs
  done

let test_insitu_signatures_reproducible () =
  let _, d, ex, plan = insitu_setup () in
  let t = Insitu.insert ex d plan in
  let fu = 0 in
  let sr = plan.Bilbo.sr_of_fu.(fu) in
  if sr >= 0 then begin
    let s1 = Insitu.run_session t d ~fu ~sr_reg:sr ~cycles:64 ~seed:7 in
    let s2 = Insitu.run_session t d ~fu ~sr_reg:sr ~cycles:64 ~seed:7 in
    check_int "deterministic signature" s1 s2;
    let s3 = Insitu.run_session t d ~fu ~sr_reg:sr ~cycles:64 ~seed:11 in
    check "seed changes signature" true (s1 <> s3)
  end

let test_insitu_campaign_detects () =
  let _, d, ex, plan = insitu_setup () in
  let t = Insitu.insert ex d plan in
  let rng = Hft_util.Rng.create 23 in
  (* Sample data-path faults only (nodes that exist pre-BIST). *)
  let n_core = Hft_gate.Netlist.n_nodes ex.Hft_gate.Expand.netlist in
  ignore n_core;
  let faults =
    Hft_gate.Fault.collapsed t.Insitu.netlist
    |> List.filter (fun _ -> Hft_util.Rng.int rng 25 = 0)
  in
  let r = Insitu.campaign t d plan ~faults ~cycles:128 ~seed:5 in
  check "sessions exist" true (List.length r.Insitu.sessions > 0);
  check
    (Printf.sprintf "in-situ coverage substantial (%d/%d)" r.Insitu.detected
       r.Insitu.n_faults)
    true
    (Insitu.coverage r > 0.4)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                          *)
(* ------------------------------------------------------------------ *)

let test_run_block_curves () =
  let r =
    Run.run_block ~checkpoints:[ 16; 64; 256 ] ~source:Run.Lfsr_source ~seed:3
      ~width:4 [ Op.Add; Op.Sub ]
  in
  check_int "three checkpoints" 3 (List.length r.Run.coverage);
  let final = snd (List.nth r.Run.coverage 2) in
  check "adder/sub block coverage high" true (final > 0.9)

let test_run_campaign () =
  let _, _, _, _, _, d = synth "diffeq" in
  let r = Run.run ~checkpoints:[ 32; 128 ] ~source:Run.Lfsr_source ~seed:7 d in
  check "blocks reported" true (List.length r.Run.blocks > 0);
  check "total coverage sane" true
    (r.Run.total_coverage > 0.5 && r.Run.total_coverage <= 1.0)

let test_lfsr_vs_arith_shapes () =
  (* Both sources reach high coverage on an adder block; the arithmetic
     source is not catastrophically worse (the paper's point: adders
     suffice as generators). *)
  let final src =
    let r =
      Run.run_block ~checkpoints:[ 256 ] ~source:src ~seed:11 ~width:4
        [ Op.Add ]
    in
    snd (List.hd r.Run.coverage)
  in
  let l = final Run.Lfsr_source and a = final Run.Arith_source in
  check "lfsr high" true (l > 0.9);
  check "arith close" true (a > 0.8)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hft_bist"
    [
      ( "lfsr",
        [
          Alcotest.test_case "maximal period" `Quick test_lfsr_maximal_period;
          Alcotest.test_case "nonzero" `Quick test_lfsr_nonzero;
          Alcotest.test_case "deterministic" `Quick test_lfsr_deterministic;
        ] );
      ( "misr",
        [
          Alcotest.test_case "distinguishes" `Quick test_misr_distinguishes;
          qt prop_misr_order_sensitive;
        ] );
      ( "bilbo",
        [
          Alcotest.test_case "plan" `Quick test_bilbo_plan_diffeq;
          Alcotest.test_case "area" `Quick test_bilbo_annotate_area;
          Alcotest.test_case "cbilbo only when forced" `Quick
            test_bilbo_cbilbo_only_when_forced;
        ] );
      ( "reg_assign",
        [
          Alcotest.test_case "reduces self-adjacency" `Quick
            test_bist_aware_reduces_self_adjacency;
          Alcotest.test_case "valid" `Quick test_bist_aware_valid;
        ] );
      ( "tfb",
        [
          Alcotest.test_case "map" `Quick test_tfb_map;
          Alcotest.test_case "xtfb fewer blocks" `Quick test_xtfb_fewer_blocks;
          Alcotest.test_case "xtfb area" `Quick test_xtfb_area_lower;
          qt prop_tfb_xtfb_invariants_random;
        ] );
      ( "share",
        [
          Alcotest.test_case "test registers" `Quick
            test_sharing_no_more_test_registers;
        ] );
      ( "session",
        [
          Alcotest.test_case "bounds" `Quick test_sessions_bounds;
          Alcotest.test_case "optimize no worse" `Quick
            test_sessions_optimize_no_worse;
          Alcotest.test_case "concurrency-aware assignment" `Quick
            test_concurrency_aware_reduces_sessions;
          Alcotest.test_case "disjoint share" `Quick
            test_sessions_disjoint_paths_share;
        ] );
      ( "arith",
        [
          Alcotest.test_case "full sweep" `Quick test_arith_full_sweep;
          Alcotest.test_case "subspace coverage" `Quick test_subspace_coverage;
          Alcotest.test_case "op streams" `Quick test_op_streams;
          Alcotest.test_case "coverage bind" `Quick test_coverage_bind_valid;
          Alcotest.test_case "compactor" `Quick test_compact_sensitivity;
        ] );
      ( "insitu",
        [
          Alcotest.test_case "functional transparency" `Quick
            test_insitu_functional_transparency;
          Alcotest.test_case "signatures reproducible" `Quick
            test_insitu_signatures_reproducible;
          Alcotest.test_case "campaign detects" `Quick
            test_insitu_campaign_detects;
        ] );
      ( "run",
        [
          Alcotest.test_case "block curves" `Quick test_run_block_curves;
          Alcotest.test_case "campaign" `Quick test_run_campaign;
          Alcotest.test_case "lfsr vs arith" `Quick test_lfsr_vs_arith_shapes;
        ] );
    ]
