test/test_util.ml: Alcotest Array Bitvec Digraph Hft_util Interval List Mfvs Pretty Printf QCheck QCheck_alcotest Rng String Union_find
