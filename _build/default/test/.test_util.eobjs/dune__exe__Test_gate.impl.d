test/test_gate.ml: Alcotest Array Bench_suite Ctrl_expand Expand Fault Fsim Graph Gsgraph Hft_cdfg Hft_gate Hft_hls Hft_rtl Hft_util List Netlist Op Podem Printf QCheck QCheck_alcotest Seq_atpg Sim
