test/test_rtl.ml: Alcotest Area Array Bench_suite Controller Datapath Datapath_gen Hft_cdfg Hft_core Hft_hls Hft_rtl Klevel List Op Printf Sgraph Testability Tscan
