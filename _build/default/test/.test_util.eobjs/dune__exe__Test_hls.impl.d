test/test_hls.ml: Alcotest Array Bench_suite Datapath_gen Fu_bind Hft_cdfg Hft_hls Hft_util Lifetime List List_sched Mobility_path Op Paper_fig1 QCheck QCheck_alcotest Reg_alloc Sched_algos Schedule
