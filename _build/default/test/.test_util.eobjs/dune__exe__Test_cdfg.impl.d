test/test_cdfg.ml: Alcotest Array Bench_suite Builder Graph Hft_cdfg Hft_util Lifetime List Loops Op Paper_fig1 Printf QCheck QCheck_alcotest Schedule Testability Transform
