(* Experiment + timing harness.

   Usage:
     dune exec bench/main.exe                 -- all experiment tables + timings
     dune exec bench/main.exe -- e1_scanregs  -- selected experiments only
     dune exec bench/main.exe -- --no-timing  -- tables only
     dune exec bench/main.exe -- --json       -- one JSON object per table row
                                                 on stdout (banners on stderr) *)

let timing_tests () =
  let open Bechamel in
  let open Hft_cdfg in
  let resources =
    [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1); (Op.Logic_unit, 1) ]
  in
  let ewf = Bench_suite.ewf () in
  let diffeq = Bench_suite.diffeq () in
  [
    Test.make ~name:"t1_table_render"
      (Staged.stage (fun () -> ignore (Hft_core.Tool_survey.render ())));
    Test.make ~name:"f1_fig1_analysis"
      (Staged.stage (fun () -> ignore (Hft_core.Fig1_exp.analyze Hft_core.Fig1_exp.B)));
    Test.make ~name:"e1_scan_selection_ewf"
      (Staged.stage (fun () ->
           let sched = Hft_hls.List_sched.schedule ewf ~resources in
           ignore (Hft_core.Scan_vars.select_effective ewf sched)));
    Test.make ~name:"e2_io_assignment_ewf"
      (Staged.stage (fun () ->
           let sched = Hft_hls.List_sched.schedule ewf ~resources in
           ignore (Hft_core.Io_reg_assign.assign ewf sched)));
    Test.make ~name:"e3_loop_aware_binding_ewf"
      (Staged.stage (fun () ->
           ignore (Hft_core.Sim_sched_assign.run ~resources ewf None)));
    Test.make ~name:"e4_podem_adder_fault"
      (Staged.stage
         (let blk = Hft_gate.Expand.comb_block ~width:4 [ Op.Add ] in
          let nl = blk.Hft_gate.Expand.b_netlist in
          let fault =
            List.hd (Hft_gate.Fault.collapsed nl)
          in
          fun () -> ignore (Hft_gate.Podem.generate_comb nl ~fault)));
    Test.make ~name:"e5_bist_aware_assignment_ewf"
      (Staged.stage (fun () ->
           let sched = Hft_hls.List_sched.schedule ewf ~resources in
           let binding = Hft_hls.Fu_bind.left_edge ~resources ewf sched in
           let info = Lifetime.compute ewf sched in
           ignore (Hft_bist.Reg_assign.bist_aware ewf sched binding info)));
    Test.make ~name:"e6_tfb_mapping_ewf"
      (Staged.stage (fun () ->
           let sched = Hft_hls.List_sched.schedule ewf ~resources in
           ignore (Hft_bist.Tfb.map ewf sched)));
    Test.make ~name:"e7_sharing_assignment_ewf"
      (Staged.stage (fun () ->
           let sched = Hft_hls.List_sched.schedule ewf ~resources in
           let binding = Hft_hls.Fu_bind.left_edge ~resources ewf sched in
           let info = Lifetime.compute ewf sched in
           ignore (Hft_bist.Share.sharing_aware ewf sched binding info)));
    Test.make ~name:"e8_session_schedule_diffeq"
      (Staged.stage
         (let r = Hft_core.Flow.synthesize_conventional ~width:8 diffeq in
          let plan = Hft_bist.Bilbo.plan r.Hft_core.Flow.datapath in
          fun () -> ignore (Hft_bist.Session.count r.Hft_core.Flow.datapath plan)));
    Test.make ~name:"e9_lfsr_block_fsim"
      (Staged.stage (fun () ->
           ignore
             (Hft_bist.Run.run_block ~checkpoints:[ 64 ]
                ~source:Hft_bist.Run.Lfsr_source ~seed:3 ~width:4 [ Op.Add ])));
    Test.make ~name:"e10_klevel_diffeq"
      (Staged.stage
         (let r = Hft_core.Flow.synthesize_conventional ~width:8 diffeq in
          let s = Hft_rtl.Sgraph.of_datapath r.Hft_core.Flow.datapath in
          fun () -> ignore (Hft_rtl.Klevel.insert s ~k:1)));
    Test.make ~name:"e11_controller_harden_diffeq"
      (Staged.stage
         (let r = Hft_core.Flow.synthesize_conventional ~width:8 diffeq in
          fun () -> ignore (Hft_core.Controller_dft.harden r.Hft_core.Flow.datapath)));
    Test.make ~name:"e12_testability_analysis_ewf"
      (Staged.stage (fun () -> ignore (Testability.analyze ewf)));
    Test.make ~name:"e13_environment_diffeq"
      (Staged.stage (fun () ->
           match Graph.producer diffeq (Graph.var_by_name diffeq "m6") with
           | Some o -> ignore (Hft_core.Hier_test.environment ~width:8 diffeq o.Graph.o_id)
           | None -> ()));
  ]

let run_timings () =
  let open Bechamel in
  if !Hft_obs.Table.mode = Hft_obs.Table.Text then begin
    print_newline ();
    print_endline
      "================ timings (Bechamel, monotonic clock) ================"
  end;
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"hft" (timing_tests ()))
  in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      (Toolkit.Instance.monotonic_clock) raw
  in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.sprintf "%.0f" est
          | Some _ | None -> "n/a"
        in
        [ name; ns ] :: acc)
      ols []
    |> List.sort compare
  in
  Hft_obs.Table.emit ~title:"timings" ~header:[ "kernel"; "ns/run" ] rows

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_timing = List.mem "--no-timing" args in
  if List.mem "--json" args then Hft_obs.Table.mode := Hft_obs.Table.Jsonl;
  let wanted =
    List.filter (fun a -> a <> "--no-timing" && a <> "--json") args
  in
  let selected =
    match wanted with
    | [] -> Experiments.all
    | names ->
      List.filter (fun (n, _) -> List.mem n names) Experiments.all
  in
  if selected = [] then begin
    Printf.eprintf "unknown experiment; available:\n";
    List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) Experiments.all;
    exit 1
  end;
  List.iter (fun (_, f) -> f ()) selected;
  if (not no_timing) && wanted = [] then run_timings ()
