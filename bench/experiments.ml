(* Experiment harness: one function per reproduced table/figure.  Every
   function prints rows in the style of the surveyed papers' tables; the
   expected shapes are recorded in EXPERIMENTS.md. *)

open Hft_cdfg
open Hft_core
module Pretty = Hft_util.Pretty

let resources =
  [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1); (Op.Logic_unit, 1) ]

let benches () = Bench_suite.all ()
let sched_of g = Hft_hls.List_sched.schedule g ~resources

(* All numeric output flows through [table] so the same rows serve the
   pretty text mode and the JSONL mode ([--json] in main.ml) without
   per-experiment formatting code.  [banner] remembers the experiment
   id so JSONL rows are tagged with the table they came from. *)
let current = ref ""

let banner id title =
  current := id;
  if !Hft_obs.Table.mode = Hft_obs.Table.Jsonl then
    Printf.eprintf "== %s — %s ==\n%!" id title
  else Printf.printf "\n================ %s — %s ================\n" id title

let table ?title ~header rows =
  match !Hft_obs.Table.mode with
  | Hft_obs.Table.Text -> Hft_obs.Table.emit ?title ~header rows
  | Hft_obs.Table.Jsonl ->
    let title =
      match title with
      | Some t -> Printf.sprintf "%s: %s" !current t
      | None -> !current
    in
    Hft_obs.Table.emit ~title ~header rows

(* Pre-rendered text blocks (paper tables) go to stderr in JSONL mode
   so stdout stays machine-parseable. *)
let text_block s =
  if !Hft_obs.Table.mode = Hft_obs.Table.Jsonl then prerr_string s
  else print_string s

(* ------------------------------------------------------------------ *)

let table1 () =
  banner "T1" "paper Table 1 (verbatim)";
  text_block (Tool_survey.render ())

let fig1 () =
  banner "F1" "paper Figure 1, executed";
  text_block (Fig1_exp.render ())

(* E1: scan registers to break all CDFG loops, three selectors. *)
let e1_scanregs () =
  banner "E1" "scan registers to break all loops ([33]/[24] vs MFVS baseline)";
  let rows =
    List.filter_map
      (fun (name, g) ->
        let sched = sched_of g in
        let m = Scan_vars.select_mfvs g sched in
        let e = Scan_vars.select_effective g sched in
        let b = Scan_vars.select_boundary g sched in
        if m.Scan_vars.scan_vars = [] then None
        else
          Some
            [ name;
              string_of_int (List.length m.Scan_vars.scan_vars);
              string_of_int m.Scan_vars.n_scan_registers;
              string_of_int (List.length e.Scan_vars.scan_vars);
              string_of_int e.Scan_vars.n_scan_registers;
              string_of_int (List.length b.Scan_vars.scan_vars);
              string_of_int b.Scan_vars.n_scan_registers ])
      (benches ())
  in
  table
    ~header:
      [ "bench"; "mfvs vars"; "mfvs regs"; "eff vars"; "eff regs";
        "bnd vars"; "bnd regs" ]
    rows

(* E2: I/O register maximisation + mobility-path scheduling. *)
let e2_ioregs () =
  banner "E2" "I/O-register assignment ([25]) and mobility-path scheduling ([26])";
  let rows =
    List.map
      (fun (name, g) ->
        let sched = sched_of g in
        let conv = Io_reg_assign.assign_conventional g sched in
        let io = Io_reg_assign.assign g sched in
        let mp = Hft_hls.Mobility_path.schedule g ~resources in
        let io_mp = Io_reg_assign.assign g mp in
        [ name;
          Printf.sprintf "%d/%d" conv.Io_reg_assign.n_io_registers
            conv.Io_reg_assign.n_registers;
          Printf.sprintf "%d/%d" io.Io_reg_assign.n_io_registers
            io.Io_reg_assign.n_registers;
          Printf.sprintf "%d/%d" io_mp.Io_reg_assign.n_io_registers
            io_mp.Io_reg_assign.n_registers;
          string_of_int (Hft_hls.Mobility_path.io_sharable_count g sched);
          string_of_int (Hft_hls.Mobility_path.io_sharable_count g mp) ])
      (benches ())
  in
  table
    ~header:
      [ "bench"; "conv io/total"; "[25] io/total"; "[25]+[26] io/total";
        "sharable (list)"; "sharable (mob-path)" ]
    rows

(* E3: assignment loops, conventional binding vs loop-aware. *)
let e3_assignloops () =
  banner "E3" "assignment loops: conventional vs simultaneous sched+assign ([33])";
  let rows =
    List.map
      (fun (name, g) ->
        let conv = Sim_sched_assign.conventional ~resources g in
        let aware = Sim_sched_assign.run ~resources g None in
        let scan_regs r =
          let info = Lifetime.compute g r.Sim_sched_assign.sched in
          let alloc = Hft_hls.Reg_alloc.left_edge g info in
          let d =
            Hft_hls.Datapath_gen.generate ~width:8 g r.Sim_sched_assign.sched
              r.Sim_sched_assign.binding alloc
          in
          List.length (Hft_rtl.Sgraph.scan_selection (Hft_rtl.Sgraph.of_datapath d))
        in
        [ name;
          string_of_int conv.Sim_sched_assign.est_assignment_loops;
          string_of_int (scan_regs conv);
          string_of_int aware.Sim_sched_assign.est_assignment_loops;
          string_of_int (scan_regs aware) ])
      (benches ())
  in
  table
    ~header:[ "bench"; "conv loops"; "conv scan regs"; "[33] loops"; "[33] scan regs" ]
    rows

(* E4: sequential ATPG effort vs scan methodology. *)
let e4_seqatpg () =
  banner "E4" "sequential ATPG effort: no DFT vs partial scan vs full scan ([10,22])";
  let rng = Hft_util.Rng.create 2024 in
  let rows =
    List.map
      (fun name ->
        let g = Bench_suite.by_name name in
        let r = Flow.synthesize_conventional ~width:4 g in
        let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
        let nl = ex.Hft_gate.Expand.netlist in
        let faults =
          Hft_gate.Fault.collapsed nl
          |> List.filter (fun _ -> Hft_util.Rng.int rng 25 = 0)
        in
        let no_dft =
          Hft_scan.Partial_scan.atpg ~backtrack_limit:50 ~max_frames:3 nl
            ~faults ~scanned:[]
        in
        let scanned = Hft_scan.Partial_scan.select_rtl_level r.Flow.datapath ex in
        let partial =
          Hft_scan.Partial_scan.atpg ~backtrack_limit:50 ~max_frames:3 nl
            ~faults ~scanned
        in
        let full = Hft_scan.Full_scan.atpg ~backtrack_limit:200 nl ~faults in
        let seq_cov (s : Hft_gate.Seq_atpg.stats) =
          Pretty.pct (Hft_gate.Seq_atpg.fault_coverage s)
        in
        [ name;
          string_of_int (List.length faults);
          seq_cov no_dft;
          string_of_int no_dft.Hft_gate.Seq_atpg.backtracks;
          seq_cov partial;
          string_of_int partial.Hft_gate.Seq_atpg.backtracks;
          Printf.sprintf "%d ffs" (List.length scanned);
          Pretty.pct (Hft_scan.Atpg_stats.coverage full.Hft_scan.Full_scan.stats);
          string_of_int full.Hft_scan.Full_scan.stats.Hft_scan.Atpg_stats.backtracks ])
      [ "tseng"; "diffeq" ]
  in
  table
    ~header:
      [ "bench"; "faults"; "noDFT cov"; "noDFT btk"; "pscan cov"; "pscan btk";
        "pscan cells"; "fscan cov"; "fscan btk" ]
    rows

(* E5: self-adjacent registers, conventional vs BIST-aware assignment. *)
let e5_selfadj () =
  banner "E5" "self-adjacent registers ([3]): conventional vs BIST-aware assignment";
  let rows =
    List.map
      (fun (name, g) ->
        let sched = sched_of g in
        let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
        let info = Lifetime.compute g sched in
        let conv = Hft_hls.Reg_alloc.left_edge g info in
        let aware = Hft_bist.Reg_assign.bist_aware g sched binding info in
        [ name;
          string_of_int conv.Hft_hls.Reg_alloc.n_regs;
          string_of_int (Hft_bist.Reg_assign.self_adjacent_count g binding conv);
          string_of_int aware.Hft_hls.Reg_alloc.n_regs;
          string_of_int (Hft_bist.Reg_assign.self_adjacent_count g binding aware) ])
      (benches ())
  in
  table
    ~header:[ "bench"; "conv regs"; "conv self-adj"; "[3] regs"; "[3] self-adj" ]
    rows

(* E6: TFB vs XTFB vs register-level BIST. *)
let e6_tfb () =
  banner "E6" "self-testable data paths: [3]-style vs TFB [31] vs XTFB [19]";
  let width = 8 in
  let rows =
    List.map
      (fun (name, g) ->
        let sched = sched_of g in
        let t = Hft_bist.Tfb.map g sched in
        let x = Hft_bist.Xtfb.map g sched in
        let bist = Flow.synthesize_for_bist ~width g in
        [ name;
          string_of_int bist.Flow.report.Flow.n_test_registers;
          string_of_int bist.Flow.report.Flow.n_cbilbo;
          string_of_int t.Hft_bist.Tfb.n_tfbs;
          Pretty.ff ~dp:0 (Hft_bist.Tfb.area ~width t);
          string_of_int x.Hft_bist.Xtfb.n_xtfbs;
          string_of_int x.Hft_bist.Xtfb.n_tpgr_only;
          Pretty.ff ~dp:0 (Hft_bist.Xtfb.area ~width x) ])
      (benches ())
  in
  table
    ~header:
      [ "bench"; "[3] test regs"; "[3] cbilbo"; "TFBs"; "TFB area";
        "XTFBs"; "XTFB tpgr-only"; "XTFB area" ]
    rows

(* E7: TPGR/SR sharing. *)
let e7_share () =
  banner "E7" "test-register sharing ([32]): conventional vs sharing-aware assignment";
  let rows =
    List.map
      (fun (name, g) ->
        let sched = sched_of g in
        let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
        let info = Lifetime.compute g sched in
        let conv = Hft_hls.Reg_alloc.left_edge g info in
        let shared = Hft_bist.Share.sharing_aware g sched binding info in
        let measure alloc =
          let d = Hft_hls.Datapath_gen.generate ~width:8 g sched binding alloc in
          let p = Hft_bist.Bilbo.plan d in
          (Hft_bist.Share.test_register_count d, p.Hft_bist.Bilbo.n_cbilbo)
        in
        let tc, cc = measure conv in
        let ts, cs = measure shared in
        [ name; string_of_int tc; string_of_int cc; string_of_int ts;
          string_of_int cs ])
      (benches ())
  in
  table
    ~header:[ "bench"; "conv test regs"; "conv cbilbo"; "[32] test regs"; "[32] cbilbo" ]
    rows

(* E8: test sessions, naive vs conflict-aware SR selection. *)
let e8_sessions () =
  banner "E8" "BIST test sessions ([20]): naive vs conflict-aware SR selection";
  let rows =
    List.map
      (fun (name, g) ->
        let conv = Flow.synthesize_conventional ~width:8 g in
        let plan = Hft_bist.Bilbo.plan conv.Flow.datapath in
        let n_paths =
          List.length (Hft_bist.Session.paths conv.Flow.datapath plan)
        in
        let naive = Hft_bist.Session.count conv.Flow.datapath plan in
        let opt =
          Hft_bist.Session.count conv.Flow.datapath
            (Hft_bist.Session.optimize conv.Flow.datapath plan)
        in
        (* Concurrency-aware register assignment: disjoint test paths. *)
        let sched = conv.Flow.sched and binding = conv.Flow.binding in
        let info = Lifetime.compute g sched in
        let alloc = Hft_bist.Session.concurrency_aware_alloc g binding info in
        let d' = Hft_hls.Datapath_gen.generate ~width:8 g sched binding alloc in
        let plan' = Hft_bist.Bilbo.plan d' in
        let conc = Hft_bist.Session.count d' plan' in
        [ name; string_of_int n_paths; string_of_int naive;
          string_of_int opt;
          Printf.sprintf "%d (%d regs)" conc (Hft_rtl.Datapath.n_regs d') ])
      (benches ())
  in
  table
    ~header:
      [ "bench"; "blocks"; "sessions (naive SR)"; "sessions (SR opt)";
        "sessions ([20] assign)" ]
    rows

(* E9: LFSR vs arithmetic generators. *)
let e9_arith () =
  banner "E9" "arithmetic BIST ([28]): coverage vs patterns, LFSR vs accumulator";
  let width = 4 in
  let checkpoints = [ 16; 64; 256; 1024 ] in
  let rows =
    List.concat_map
      (fun kinds ->
        let tag =
          String.concat "+" (List.map Op.to_string kinds)
        in
        List.map
          (fun (src, srctag) ->
            let r =
              Hft_bist.Run.run_block ~checkpoints ~source:src ~seed:11 ~width
                kinds
            in
            tag :: srctag
            :: List.map (fun (_, c) -> Pretty.pct c) r.Hft_bist.Run.coverage)
          [ (Hft_bist.Run.Lfsr_source, "lfsr");
            (Hft_bist.Run.Arith_source, "accumulator") ])
      [ [ Op.Add ]; [ Op.Mul ]; [ Op.Add; Op.Sub ] ]
  in
  table
    ~header:
      ([ "block"; "generator" ]
       @ List.map (fun c -> Printf.sprintf "@%d" c) checkpoints)
    rows;
  (* Subspace state coverage of the two binding policies. *)
  let g = Bench_suite.ewf () in
  let sched = sched_of g in
  let conv = Hft_hls.Fu_bind.left_edge ~resources g sched in
  let cov = Hft_bist.Arith.coverage_bind ~resources ~width:8 ~samples:64 ~seed:5 g sched in
  let streams = Hft_bist.Arith.op_streams ~width:8 ~samples:64 ~seed:5 g in
  let fu_cov (b : Hft_hls.Fu_bind.t) =
    let per_inst =
      Array.to_list b.Hft_hls.Fu_bind.instances
      |> List.map (fun (_, ops) ->
             Hft_bist.Arith.subspace_coverage ~k:3
               (List.concat_map (fun o -> List.assoc o streams) ops))
    in
    List.fold_left ( +. ) 0.0 per_inst /. float_of_int (List.length per_inst)
  in
  table
    ~title:"mean subspace state coverage at unit inputs (k = 3), ewf"
    ~header:[ "binding"; "coverage" ]
    [ [ "conventional"; Pretty.pct (fu_cov conv) ];
      [ "coverage-guided [28]"; Pretty.pct (fu_cov cov) ] ]

(* E10: k-level test points vs scan. *)
let e10_klevel () =
  banner "E10" "non-scan k-level test points ([15]) vs scan registers";
  let rows =
    List.filter_map
      (fun (name, g) ->
        let r = Flow.synthesize_conventional ~width:8 g in
        let s = Hft_rtl.Sgraph.of_datapath r.Flow.datapath in
        let scan = List.length (Hft_rtl.Sgraph.scan_selection s) in
        if scan = 0 then None
        else
          let sweep = Hft_rtl.Klevel.sweep s ~max_k:3 in
          Some
            (name :: string_of_int scan
             :: List.map
                  (fun k -> string_of_int (List.length k.Hft_rtl.Klevel.test_points))
                  sweep))
      (benches ())
  in
  table
    ~header:[ "bench"; "scan regs (k=0 cut)"; "tp k=0"; "tp k=1"; "tp k=2"; "tp k=3" ]
    rows

(* E11: controller DFT — implications, then real composite ATPG. *)
let e11_ctrl () =
  banner "E11" "controller-based DFT ([14]): control-vector implications";
  let rows =
    List.map
      (fun (name, g) ->
        let r = Flow.synthesize_conventional ~width:8 g in
        let rep = Controller_dft.harden r.Flow.datapath in
        [ name;
          string_of_int rep.Controller_dft.implications_before;
          string_of_int rep.Controller_dft.implications_after;
          string_of_int rep.Controller_dft.extra_vectors ])
      (benches ())
  in
  table
    ~header:[ "bench"; "implications"; "after DFT"; "extra vectors" ]
    rows;
  (* Composite (FSM-driven) sequential ATPG, with and without the test
     vectors: the controller's functional vocabulary really limits
     coverage, and the DFT vectors recover part of it. *)
  let rows2 =
    List.map
      (fun name ->
        let g = Bench_suite.by_name name in
        let r = Flow.synthesize_conventional ~width:3 g in
        let atpg_with controller tag =
          let t = Hft_gate.Ctrl_expand.compose r.Flow.datapath controller in
          let rng = Hft_util.Rng.create 77 in
          (* Same fault universe for both controllers: the data-path
             prefix is identical across compositions. *)
          let faults =
            Hft_gate.Fault.collapsed t.Hft_gate.Ctrl_expand.netlist
            |> List.filter (fun f ->
                   f.Hft_gate.Fault.node
                   < t.Hft_gate.Ctrl_expand.n_datapath_nodes)
            |> List.filter (fun _ -> Hft_util.Rng.int rng 10 = 0)
          in
          (* Frames must cover reset + the full FSM walk. *)
          let frames = r.Flow.datapath.Hft_rtl.Datapath.n_steps + 3 in
          let s =
            Hft_gate.Ctrl_expand.atpg ~backtrack_limit:200 ~max_frames:frames t
              ~faults
          in
          (tag, List.length faults, Hft_gate.Seq_atpg.fault_coverage s)
        in
        let c0 = Hft_rtl.Controller.of_datapath r.Flow.datapath in
        let hardened =
          (Controller_dft.harden r.Flow.datapath).Controller_dft.controller
        in
        let _, nf0, cov0 = atpg_with c0 "plain" in
        let _, nf1, cov1 = atpg_with hardened "dft" in
        [ name; string_of_int nf0; Pretty.pct cov0; string_of_int nf1;
          Pretty.pct cov1 ])
      [ "tseng"; "diffeq" ]
  in
  table
    ~title:"composite controller+datapath sequential ATPG (sampled faults)"
    ~header:
      [ "bench"; "faults (plain)"; "coverage (plain)"; "faults (dft)";
        "coverage (dft)" ]
    rows2

(* E12: behaviour modification. *)
let e12_behmod () =
  banner "E12" "behaviour modification ([9]/[16]): test statements and deflections";
  let rows =
    List.map
      (fun (name, g) ->
        let ts = Behav_mod.add_test_statements g in
        let defl =
          Behav_mod.deflect_for_scan_sharing ~max_tries:4
            ~resources g
        in
        [ name;
          string_of_int ts.Behav_mod.hard_before;
          string_of_int ts.Behav_mod.hard_after;
          string_of_int (ts.Behav_mod.test_controls + ts.Behav_mod.test_observes);
          string_of_int defl.Behav_mod.scan_regs_before;
          string_of_int defl.Behav_mod.scan_regs_after;
          string_of_int defl.Behav_mod.deflections ])
      (benches ())
  in
  table
    ~header:
      [ "bench"; "hard vars"; "after [9]"; "test points"; "scan regs";
        "after [16]"; "deflections" ]
    rows

(* E13: hierarchical testability. *)
let e13_hier () =
  banner "E13" "hierarchical test environments ([7]/[38])";
  let rows =
    List.map
      (fun (name, g) ->
        let sched = sched_of g in
        let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
        let covered, uncovered = Hier_test.covered_instances ~width:8 g binding in
        let g', points = Hier_test.ensure_coverage ~width:8 g binding in
        let covered', _ = Hier_test.covered_instances ~width:8 g' binding in
        [ name;
          Printf.sprintf "%d/%d" (List.length covered)
            (List.length covered + List.length uncovered);
          string_of_int points;
          Printf.sprintf "%d/%d" (List.length covered')
            (List.length covered + List.length uncovered) ])
      (benches ())
  in
  table
    ~header:[ "bench"; "instances w/ env"; "test points added"; "after repair" ]
    rows;
  (* Composition demo: translate module vectors for diffeq's m6, and
     contrast the effort with flat sequential ATPG over the same number
     of faults. *)
  let g = Bench_suite.diffeq () in
  (match Graph.producer g (Graph.var_by_name g "m6") with
   | Some o ->
     (match Hier_test.environment ~width:8 g o.Graph.o_id with
      | Some env ->
        let pairs = List.init 16 (fun i -> (i * 3 mod 17, i * 7 mod 13)) in
        let c = Hier_test.compose ~width:8 g env pairs in
        table ~title:"compose (diffeq multiplier m6)"
          ~header:[ "vectors translated"; "confirmed end-to-end" ]
          [ [ string_of_int c.Hier_test.vectors_translated;
              string_of_int c.Hier_test.vectors_confirmed ] ];
        (* Hierarchical effort: PODEM on the 4-bit multiplier block. *)
        let blk = Hft_gate.Expand.comb_block ~width:4 [ Op.Mul ] in
        let bnl = blk.Hft_gate.Expand.b_netlist in
        let mod_faults = Hft_gate.Fault.collapsed bnl in
        let mod_impl = ref 0 and mod_det = ref 0 in
        List.iter
          (fun f ->
            match Hft_gate.Podem.generate_comb bnl ~fault:f with
            | Hft_gate.Podem.Test _, e ->
              incr mod_det;
              mod_impl := !mod_impl + e.Hft_gate.Podem.implications
            | _, e -> mod_impl := !mod_impl + e.Hft_gate.Podem.implications)
          mod_faults;
        (* Flat effort: sequential ATPG over the same number of sampled
           faults on the whole expansion. *)
        let r = Flow.synthesize_conventional ~width:4 g in
        let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
        let nl = ex.Hft_gate.Expand.netlist in
        let rng = Hft_util.Rng.create 3 in
        let all = Hft_gate.Fault.collapsed nl in
        let keep = float_of_int (List.length mod_faults) /. float_of_int (List.length all) in
        let flat_faults =
          List.filter (fun _ -> Hft_util.Rng.float rng < keep) all
        in
        let flat =
          Hft_gate.Seq_atpg.run ~backtrack_limit:40 ~max_frames:3 nl
            ~faults:flat_faults ~scanned:[]
        in
        let per_fault impl total =
          float_of_int impl /. float_of_int (max 1 total)
        in
        let ratio =
          per_fault flat.Hft_gate.Seq_atpg.implications
            flat.Hft_gate.Seq_atpg.total
          /. per_fault !mod_impl (List.length mod_faults)
        in
        table ~title:"hierarchical vs flat ATPG effort"
          ~header:
            [ "approach"; "faults"; "detected"; "implications"; "impl ratio" ]
          [ [ "hierarchical (module)";
              string_of_int (List.length mod_faults);
              string_of_int !mod_det;
              string_of_int !mod_impl; "1.0" ];
            [ "flat sequential";
              string_of_int flat.Hft_gate.Seq_atpg.total;
              string_of_int flat.Hft_gate.Seq_atpg.detected;
              string_of_int flat.Hft_gate.Seq_atpg.implications;
              Printf.sprintf "%.1f" ratio ] ]
      | None -> prerr_endline "compose demo: no environment found")
   | None -> ())

(* E14: transparent scan on non-register nodes. *)
let e14_tscan () =
  banner "E14" "transparent scan cells on non-register nodes ([35]/[37])";
  let rows =
    List.filter_map
      (fun (name, g) ->
        let r = Flow.synthesize_conventional ~width:8 g in
        let s = Hft_rtl.Sgraph.of_datapath r.Flow.datapath in
        if Hft_rtl.Sgraph.nontrivial_loops s = [] then None
        else
          let scan_only = List.length (Hft_rtl.Sgraph.scan_selection s) in
          let sel = Hft_rtl.Tscan.select s in
          Some
            [ name;
              string_of_int (List.length (Hft_rtl.Sgraph.nontrivial_loops s));
              string_of_int scan_only;
              string_of_int (List.length sel.Hft_rtl.Tscan.scan_regs);
              string_of_int (List.length sel.Hft_rtl.Tscan.tscan_fus);
              string_of_int (Hft_rtl.Tscan.n_cells sel) ])
      (benches ())
  in
  table
    ~header:
      [ "bench"; "loops"; "scan-only regs"; "mixed: scan regs";
        "mixed: tscan cells"; "mixed total" ]
    rows

(* E15: test application time accounting: scan shifting vs BIST. *)
let e15_testtime () =
  banner "E15" "test application cycles: full scan shifting vs in-situ BIST";
  let rows =
    List.map
      (fun name ->
        let g = Bench_suite.by_name name in
        let r = Flow.synthesize_conventional ~width:4 g in
        let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
        let nl = ex.Hft_gate.Expand.netlist in
        let rng = Hft_util.Rng.create 5 in
        let faults =
          Hft_gate.Fault.collapsed nl
          |> List.filter (fun _ -> Hft_util.Rng.int rng 10 = 0)
        in
        let fs = Hft_scan.Full_scan.atpg ~backtrack_limit:200 nl ~faults in
        let n_tests = List.length fs.Hft_scan.Full_scan.tests in
        let cycles =
          Hft_scan.Chain.test_cycles fs.Hft_scan.Full_scan.chain ~n_tests
        in
        (* BIST: patterns to hit the same coverage as full scan, read off
           the campaign curve, times the session count. *)
        let plan = Hft_bist.Bilbo.plan r.Flow.datapath in
        let sessions = Hft_bist.Session.count r.Flow.datapath plan in
        let report =
          Hft_bist.Run.run ~checkpoints:[ 256; 1024 ]
            ~source:Hft_bist.Run.Lfsr_source ~seed:3 r.Flow.datapath
        in
        let bist_cycles = 1024 * sessions in
        [ name;
          string_of_int n_tests;
          string_of_int (List.length fs.Hft_scan.Full_scan.chain.Hft_scan.Chain.cells);
          string_of_int cycles;
          string_of_int sessions;
          string_of_int bist_cycles;
          Pretty.pct (Hft_scan.Atpg_stats.coverage fs.Hft_scan.Full_scan.stats);
          Pretty.pct report.Hft_bist.Run.total_coverage ])
      [ "tseng"; "diffeq" ]
  in
  table
    ~header:
      [ "bench"; "scan tests"; "chain len"; "scan cycles"; "sessions";
        "bist cycles"; "scan cov"; "bist cov" ]
    rows

(* E16: scan selection level — gate vs RTL structure vs RTL ranges. *)
let e16_rtl_scan () =
  banner "E16"
    "partial-scan selection level ([12]): gate-level vs RTL structure vs RTL ranges";
  let rows =
    List.map
      (fun name ->
        let g = Bench_suite.by_name name in
        let r = Flow.synthesize_conventional ~width:4 g in
        let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
        let nl = ex.Hft_gate.Expand.netlist in
        let s = Hft_rtl.Sgraph.of_datapath r.Flow.datapath in
        let gate_sel = Hft_scan.Partial_scan.select_gate_level nl in
        let rtl_regs = Hft_rtl.Sgraph.scan_selection s in
        let rtl_sel =
          List.concat_map
            (fun reg -> Array.to_list ex.Hft_gate.Expand.reg_q.(reg))
            rtl_regs
        in
        let range_regs = Hft_rtl.Testability.scan_for_hard_nodes ~threshold:2 s in
        let range_sel =
          List.concat_map
            (fun reg -> Array.to_list ex.Hft_gate.Expand.reg_q.(reg))
            range_regs
        in
        let rng = Hft_util.Rng.create 33 in
        let faults =
          Hft_gate.Fault.collapsed nl
          |> List.filter (fun _ -> Hft_util.Rng.int rng 30 = 0)
        in
        let cov scanned =
          let st =
            Hft_scan.Partial_scan.atpg ~backtrack_limit:40 ~max_frames:3 nl
              ~faults ~scanned
          in
          Pretty.pct (Hft_gate.Seq_atpg.fault_coverage st)
        in
        [ name;
          Printf.sprintf "%d cells, %s" (List.length gate_sel) (cov gate_sel);
          Printf.sprintf "%d regs = %d cells, %s" (List.length rtl_regs)
            (List.length rtl_sel) (cov rtl_sel);
          Printf.sprintf "%d regs = %d cells, %s" (List.length range_regs)
            (List.length range_sel) (cov range_sel) ])
      [ "tseng"; "diffeq" ]
  in
  table
    ~header:[ "bench"; "gate-level MFVS"; "RTL S-graph"; "RTL ranges [12]" ]
    rows

(* E17: in-situ BIST — registers reconfigured as LFSR/MISR at gate
   level, sessions simulated, faults measured against signatures. *)
let e17_insitu () =
  banner "E17" "in-situ BIST (reconfigured functional registers, section 5)";
  let rows =
    List.map
      (fun name ->
        let g = Bench_suite.by_name name in
        let res =
          [ (Op.Multiplier, 1); (Op.Alu, 1); (Op.Comparator, 1);
            (Op.Logic_unit, 1) ]
        in
        let sched = Hft_hls.List_sched.schedule g ~resources:res in
        let binding = Hft_hls.Fu_bind.left_edge ~resources:res g sched in
        let info = Lifetime.compute g sched in
        let alloc = Hft_hls.Reg_alloc.left_edge g info in
        let d = Hft_hls.Datapath_gen.generate ~width:4 g sched binding alloc in
        let ex = Hft_gate.Expand.of_datapath d in
        let plan = Hft_bist.Bilbo.plan d in
        let t = Hft_bist.Insitu.insert ex d plan in
        let rng = Hft_util.Rng.create 23 in
        let faults =
          Hft_gate.Fault.collapsed t.Hft_bist.Insitu.netlist
          |> List.filter (fun _ -> Hft_util.Rng.int rng 30 = 0)
        in
        let r =
          Hft_bist.Insitu.campaign t d plan ~faults ~cycles:256 ~seed:5
        in
        [ name;
          string_of_int (List.length r.Hft_bist.Insitu.sessions);
          string_of_int r.Hft_bist.Insitu.n_faults;
          string_of_int r.Hft_bist.Insitu.detected;
          Pretty.pct (Hft_bist.Insitu.coverage r) ])
      [ "tseng"; "diffeq" ]
  in
  table
    ~header:[ "bench"; "sessions"; "faults"; "detected"; "in-situ coverage" ]
    rows

(* Flow summary: the headline per-benchmark DFT comparison. *)
let flows () =
  banner "FLOWS" "per-benchmark flow summary (conventional / partial-scan / bist)";
  List.iter
    (fun (name, g) ->
      let rows =
        List.map
          (fun r -> Flow.report_row r.Flow.report)
          [ Flow.synthesize_conventional ~width:8 g;
            Flow.synthesize_for_partial_scan ~width:8 g;
            Flow.synthesize_for_bist ~width:8 g ]
      in
      table ~title:name ~header:Flow.report_header rows)
    (benches ())

let all : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("e1_scanregs", e1_scanregs);
    ("e2_ioregs", e2_ioregs);
    ("e3_assignloops", e3_assignloops);
    ("e4_seqatpg", e4_seqatpg);
    ("e5_selfadj", e5_selfadj);
    ("e6_tfb", e6_tfb);
    ("e7_share", e7_share);
    ("e8_sessions", e8_sessions);
    ("e9_arith", e9_arith);
    ("e10_klevel", e10_klevel);
    ("e11_ctrl", e11_ctrl);
    ("e12_behmod", e12_behmod);
    ("e13_hier", e13_hier);
    ("e14_tscan", e14_tscan);
    ("e15_testtime", e15_testtime);
    ("e16_rtl_scan", e16_rtl_scan);
    ("e17_insitu", e17_insitu);
    ("flows", flows);
  ]
