(* hft: high-level synthesis for testability, command-line driver.

     hft synth   --bench ewf --flow partial-scan [--width 8]
     hft analyze --bench diffeq
     hft atpg    --bench tseng [--sample 25]
     hft bist    --bench diffeq [--patterns 1024]
     hft lint    --bench fig1b [--flow partial-scan] [--json]
     hft list *)

open Cmdliner
open Hft_cdfg
open Hft_core

let bench_names = List.map fst (Bench_suite.all ())

(* Bench names arrive as free strings so unknown names can exit with a
   clean diagnostic (code 2) instead of an uncaught exception. *)
let resolve_bench ?(extra = []) name =
  match List.assoc_opt name (Bench_suite.all ()) with
  | Some g -> `Bench g
  | None ->
    (match List.assoc_opt name extra with
     | Some v -> v
     | None ->
       Printf.eprintf "hft: unknown benchmark '%s' (known: %s)\n" name
         (String.concat ", " (bench_names @ List.map fst extra));
       exit 2)

let bench_graph ?extra name =
  match resolve_bench ?extra name with
  | `Bench g -> g
  | _ -> assert false

let bench_arg =
  let doc =
    Printf.sprintf "Benchmark behaviour (%s)." (String.concat ", " bench_names)
  in
  Arg.(required & opt (some string) None
       & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let width_arg =
  Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"BITS" ~doc:"Data-path width.")

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit the data path as Graphviz DOT.")

(* ------------------------------------------------------------------ *)

let flow_arg =
  Arg.(value & opt (enum Flow.flow_kinds) Flow.Conventional
       & info [ "f"; "flow" ] ~docv:"FLOW"
           ~doc:"Synthesis flow: conventional, partial-scan or bist.")

let synth_cmd =
  let run bench flow width dot =
    let g = bench_graph bench in
    let r = Flow.synthesize ~width flow g in
    if dot then print_string (Hft_rtl.Datapath.to_dot r.Flow.datapath)
    else begin
      print_string (Hft_rtl.Datapath.pp r.Flow.datapath);
      Hft_util.Pretty.print ~header:Flow.report_header
        [ Flow.report_row r.Flow.report ]
    end
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesise a benchmark with a DFT flow")
    Term.(const run $ bench_arg $ flow_arg $ width_arg $ dot_arg)

let analyze_cmd =
  let run bench width =
    let g = bench_graph bench in
    Printf.printf "%s: %d ops, %d vars, %d states\n" bench (Graph.n_ops g)
      (Graph.n_vars g)
      (List.length (Graph.state_vars g));
    let loops = Loops.enumerate g in
    Printf.printf "CDFG loops: %d\n" (List.length loops);
    let cls = Testability.analyze g in
    Printf.printf "hard variables (behavioural): %d\n"
      (List.length (Testability.hard_variables g cls));
    let r = Flow.synthesize_conventional ~width g in
    let s = Hft_rtl.Sgraph.of_datapath r.Flow.datapath in
    Printf.printf "conventional data path: %d regs, %d fus, %d loops, %d self-loops\n"
      (Hft_rtl.Datapath.n_regs r.Flow.datapath)
      (Hft_rtl.Datapath.n_fus r.Flow.datapath)
      (List.length (Hft_rtl.Sgraph.nontrivial_loops s))
      (List.length (Hft_rtl.Sgraph.self_loop_regs s));
    print_string
      (Hft_rtl.Testability.pp_report r.Flow.datapath
         (Hft_rtl.Testability.analyze s))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Testability analysis of a benchmark")
    Term.(const run $ bench_arg $ width_arg)

let atpg_cmd =
  let sample_arg =
    Arg.(value & opt int 25
         & info [ "sample" ] ~docv:"N" ~doc:"Keep one fault in N.")
  in
  let run bench width sample =
    let g = bench_graph bench in
    let rng = Hft_util.Rng.create 2024 in
    let conv = Flow.synthesize_conventional ~width g in
    let scan = Flow.synthesize_for_partial_scan ~width g in
    let atpg tag (r : Flow.result) =
      let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
      let nl = ex.Hft_gate.Expand.netlist in
      let faults =
        Hft_gate.Fault.collapsed nl
        |> List.filter (fun _ -> Hft_util.Rng.int rng sample = 0)
      in
      let scanned =
        Array.to_list r.Flow.datapath.Hft_rtl.Datapath.regs
        |> List.concat_map (fun reg ->
               if reg.Hft_rtl.Datapath.r_kind = Hft_rtl.Datapath.Scan then
                 Array.to_list ex.Hft_gate.Expand.reg_q.(reg.Hft_rtl.Datapath.r_id)
               else [])
      in
      let stats =
        Hft_scan.Partial_scan.atpg ~backtrack_limit:50 ~max_frames:3 nl
          ~faults ~scanned
      in
      Printf.printf "%-14s %4d faults  coverage %6s  backtracks %7d  scan cells %d\n"
        tag (List.length faults)
        (Hft_util.Pretty.pct (Hft_gate.Seq_atpg.fault_coverage stats))
        stats.Hft_gate.Seq_atpg.backtracks (List.length scanned)
    in
    atpg "no DFT" conv;
    atpg "partial scan" scan
  in
  Cmd.v (Cmd.info "atpg" ~doc:"Gate-level sequential ATPG comparison")
    Term.(const run $ bench_arg $ width_arg $ sample_arg)

let bist_cmd =
  let patterns_arg =
    Arg.(value & opt int 1024
         & info [ "patterns" ] ~docv:"N" ~doc:"Pseudorandom patterns per block.")
  in
  let run bench width patterns =
    let g = bench_graph bench in
    let r = Flow.synthesize_for_bist ~width g in
    Hft_util.Pretty.print ~header:Flow.report_header
      [ Flow.report_row r.Flow.report ];
    let report =
      Hft_bist.Run.run ~checkpoints:[ patterns / 4; patterns ]
        ~source:Hft_bist.Run.Lfsr_source ~seed:3 r.Flow.datapath
    in
    List.iter
      (fun b ->
        Printf.printf "block fu%d: %d gates, %d faults, final coverage %s\n"
          b.Hft_bist.Run.fu b.Hft_bist.Run.n_gates b.Hft_bist.Run.n_faults
          (Hft_util.Pretty.pct
             (match List.rev b.Hft_bist.Run.coverage with
              | (_, c) :: _ -> c
              | [] -> 0.0)))
      report.Hft_bist.Run.blocks;
    Printf.printf "total coverage: %s\n"
      (Hft_util.Pretty.pct report.Hft_bist.Run.total_coverage)
  in
  Cmd.v (Cmd.info "bist" ~doc:"BIST synthesis and pseudorandom campaign")
    Term.(const run $ bench_arg $ width_arg $ patterns_arg)

let lint_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as machine-readable JSON.")
  in
  let cc_arg =
    Arg.(value & opt int Hft_lint.Rules.default.Hft_lint.Rules.cc_threshold
         & info [ "cc-threshold" ] ~docv:"N"
             ~doc:"SCOAP controllability threshold (HFT-L007).")
  in
  let co_arg =
    Arg.(value & opt int Hft_lint.Rules.default.Hft_lint.Rules.co_threshold
         & info [ "co-threshold" ] ~docv:"N"
             ~doc:"SCOAP observability threshold (HFT-L008).")
  in
  let fig1 which () =
    let g, d = Fig1_exp.datapath which in
    (Hft_lint.Rules.ctx ~graph:g d, "fig1-binding")
  in
  let run bench flow width json cc co =
    let ctx, flow_name =
      match
        resolve_bench
          ~extra:[ ("fig1b", `Fig1 Fig1_exp.B); ("fig1c", `Fig1 Fig1_exp.C) ]
          bench
      with
      | `Fig1 which -> fig1 which ()
      | `Bench g ->
        let r = Flow.synthesize ~width flow g in
        ( Hft_lint.Rules.ctx ~graph:r.Flow.graph r.Flow.datapath,
          Flow.flow_kind_to_string flow )
    in
    let config =
      { Hft_lint.Rules.default with
        Hft_lint.Rules.cc_threshold = cc;
        Hft_lint.Rules.co_threshold = co }
    in
    let diags = Hft_lint.Engine.run ~config ctx in
    let datapath = ctx.Hft_lint.Rules.datapath in
    if json then
      print_endline
        (Hft_util.Json.to_string
           (Hft_lint.Report.to_json
              ~meta:
                [ ("bench", Hft_util.Json.String bench);
                  ("flow", Hft_util.Json.String flow_name) ]
              ~datapath diags))
    else print_string (Hft_lint.Report.to_table ~datapath diags);
    if Hft_lint.Diagnostic.has_errors diags then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static testability analysis: SCOAP metrics and design-rule checks \
          (exit 1 on error findings; benches include fig1b/fig1c, the two \
          Figure 1 bindings)")
    Term.(const run $ bench_arg $ flow_arg $ width_arg $ json_arg $ cc_arg
          $ co_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (name, g) ->
        Printf.printf "%-11s %2d ops, %d states (%s)\n" name (Graph.n_ops g)
          (List.length (Graph.state_vars g))
          (String.concat ", "
             (List.map
                (fun (c, n) ->
                  Printf.sprintf "%d %s" n (Op.fu_class_to_string c))
                (Graph.op_profile g))))
      (Bench_suite.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark behaviours")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hft" ~version:"1.0.0"
      ~doc:"High-level synthesis for testability (DAC'96 survey reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ synth_cmd; analyze_cmd; atpg_cmd; bist_cmd; lint_cmd; list_cmd ]))
