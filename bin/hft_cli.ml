(* hft: high-level synthesis for testability, command-line driver.

     hft synth   --bench ewf --flow partial-scan [--width 8] [--trace]
     hft analyze --bench diffeq
     hft atpg    --bench tseng [--sample 25]
     hft bist    --bench diffeq [--patterns 1024]
     hft lint    --bench fig1b [--flow partial-scan] [--json]
     hft bench   [--quick] [--json] [--out BENCH_hft.json]
     hft report  --bench fig1b [--flow partial-scan] [--top 10] [--json]
     hft report  --journal-in journal.jsonl [--json]
     hft watch   progress.jsonl [--no-follow]
     hft list

   Every subcommand accepts --trace / --metrics / --metrics-json
   (observability report after the run) plus --trace-out FILE (Chrome
   trace-event JSON), --journal-out / --ledger-out FILE (event journal
   and fault ledger as JSONL), --metrics-out FILE (OpenMetrics text
   exposition) and --progress-out SINK (hft-progress/1 live telemetry,
   tailed by `hft watch`); timing diagnostics go to stderr so piped
   --json output stays parseable. *)

open Cmdliner
open Hft_cdfg
open Hft_core

let bench_names = List.map fst (Bench_suite.all ())

(* Bench names arrive as free strings so unknown names can exit with a
   clean diagnostic (code 2) instead of an uncaught exception. *)
let resolve_bench ?(extra = []) name =
  match List.assoc_opt name (Bench_suite.all ()) with
  | Some g -> `Bench g
  | None ->
    (match List.assoc_opt name extra with
     | Some v -> v
     | None ->
       Printf.eprintf "hft: unknown benchmark '%s' (known: %s)\n" name
         (String.concat ", " (bench_names @ List.map fst extra));
       exit 2)

let bench_graph ?extra name =
  match resolve_bench ?extra name with
  | `Bench g -> g
  | _ -> assert false

let bench_arg =
  let doc =
    Printf.sprintf "Benchmark behaviour (%s)." (String.concat ", " bench_names)
  in
  Arg.(required & opt (some string) None
       & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let width_arg =
  Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"BITS" ~doc:"Data-path width.")

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit the data path as Graphviz DOT.")

(* ------------------------------------------------------------------ *)
(* Observability plumbing shared by every subcommand.                 *)

type obs_opts = {
  trace : bool;
  metrics : bool;
  metrics_json : bool;
  trace_out : string option;
  journal_out : string option;
  ledger_out : string option;
  metrics_out : string option;
  progress_out : string option;
  progress_every : int;
  progress_interval : float;
  gc_stats : bool;
}

let obs_term =
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the nested span tree of the run after the report.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the metric registry as a table after the run.")
  in
  let metrics_json =
    Arg.(value & flag
         & info [ "metrics-json" ]
             ~doc:"Print the metric registry as one JSON object after the run.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the span tree as a Chrome trace-event JSON file \
                   (load in chrome://tracing or Perfetto).")
  in
  let journal_out =
    Arg.(value & opt (some string) None
         & info [ "journal-out" ] ~docv:"FILE"
             ~doc:"Write the structured event journal as JSONL (one typed \
                   event object per line).")
  in
  let ledger_out =
    Arg.(value & opt (some string) None
         & info [ "ledger-out" ] ~docv:"FILE"
             ~doc:"Write the fault-class ledger as JSONL (class rows then \
                   tests; readable back via report --journal-in).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the metric registry in OpenMetrics/Prometheus text \
                   exposition; with --progress-out the file is also \
                   rewritten at every snapshot, so a scraper sees the \
                   campaign live.")
  in
  let progress_out =
    Arg.(value & opt (some string) None
         & info [ "progress-out" ] ~docv:"SINK"
             ~doc:"Stream hft-progress/1 telemetry (campaign start, phase \
                   begin/end, cadenced coverage snapshots with rates and \
                   ETA, a final snapshot matching the report waterfall) as \
                   JSONL to SINK: a file path, 'stderr', or 'fd:N'.  Tail \
                   it with `hft watch`.")
  in
  let progress_every =
    Arg.(value & opt int 8
         & info [ "progress-every" ] ~docv:"N"
             ~doc:"Snapshot cadence: at most one snapshot per N fault-class \
                   resolutions.")
  in
  let progress_interval =
    Arg.(value & opt float 0.0
         & info [ "progress-interval" ] ~docv:"SECS"
             ~doc:"Minimum seconds between snapshots (rate limit on top of \
                   --progress-every).")
  in
  let gc_stats =
    Arg.(value & flag
         & info [ "gc-stats" ]
             ~doc:"Fold per-phase GC/allocation deltas (minor/major words, \
                   compactions) into span attributes.")
  in
  Term.(const (fun trace metrics metrics_json trace_out journal_out
                   ledger_out metrics_out progress_out progress_every
                   progress_interval gc_stats ->
            { trace; metrics; metrics_json; trace_out; journal_out;
              ledger_out; metrics_out; progress_out; progress_every;
              progress_interval; gc_stats })
        $ trace $ metrics $ metrics_json $ trace_out $ journal_out
        $ ledger_out $ metrics_out $ progress_out $ progress_every
        $ progress_interval $ gc_stats)

(* Run a subcommand body under the observability sink.  Tracing turns
   on when any obs flag is given; the trace/metrics report prints to
   stdout (the user asked for it), while the elapsed-time diagnostic
   always goes to stderr so `... --json | jq` stays clean.  The body's
   result is returned so callers can turn it into an exit status
   *after* the reports are flushed. *)
let with_obs ~cmd obs f =
  if obs.trace || obs.metrics || obs.metrics_json || obs.trace_out <> None
     || obs.journal_out <> None || obs.ledger_out <> None
     || obs.metrics_out <> None || obs.progress_out <> None
  then Hft_obs.enabled := true;
  if obs.gc_stats then Hft_obs.Config.gc_stats := true;
  (match obs.progress_out with
   | Some spec ->
     (match Hft_obs.Progress.sink_of_spec spec with
      | Ok sink ->
        let config =
          { Hft_obs.Progress.default_config with
            Hft_obs.Progress.every_classes = max 1 obs.progress_every;
            min_interval_s = obs.progress_interval }
        in
        Hft_obs.Progress.start ~config ?metrics_out:obs.metrics_out sink
      | Error msg ->
        Printf.eprintf "hft %s: --progress-out %s: %s\n%!" cmd spec msg;
        exit 2)
   | None -> ());
  let t0 = Unix.gettimeofday () in
  let r = Fun.protect ~finally:Hft_obs.Progress.stop f in
  if obs.trace then print_string (Hft_obs.Span.render ());
  if obs.metrics then print_string (Hft_obs.Export.metrics_table ());
  if obs.metrics_json then
    print_endline (Hft_util.Json.to_string (Hft_obs.Export.metrics_json ()));
  let write_file file text what =
    let oc = open_out file in
    output_string oc text;
    if text = "" || text.[String.length text - 1] <> '\n' then
      output_char oc '\n';
    close_out oc;
    Printf.eprintf "hft %s: wrote %s %s\n%!" cmd what file
  in
  (match obs.trace_out with
   | Some file ->
     write_file file
       (Hft_util.Json.to_string (Hft_obs.Export.chrome_trace ()))
       "Chrome trace"
   | None -> ());
  (match obs.journal_out with
   | Some file ->
     write_file file (Hft_obs.Journal.to_jsonl ()) "event journal"
   | None -> ());
  (match obs.ledger_out with
   | Some file ->
     write_file file (Hft_obs.Ledger.to_jsonl ()) "fault ledger"
   | None -> ());
  (match obs.metrics_out with
   | Some file ->
     write_file file (Hft_obs.Export.openmetrics ()) "OpenMetrics exposition"
   | None -> ());
  Printf.eprintf "hft %s: %.1f ms\n%!" cmd
    (1e3 *. (Unix.gettimeofday () -. t0));
  r

(* Figure 1's CDFG doubles as a (tiny) synthesisable bench, so the
   traceable flows cover the paper's worked example too. *)
let fig1_extra () =
  let g = Paper_fig1.graph () in
  [ ("fig1b", `Bench g); ("fig1c", `Bench g) ]

let flow_arg =
  Arg.(value & opt (enum Flow.flow_kinds) Flow.Conventional
       & info [ "f"; "flow" ] ~docv:"FLOW"
           ~doc:"Synthesis flow: conventional, partial-scan or bist.")

let synth_cmd =
  let run bench flow width dot obs =
    with_obs ~cmd:"synth" obs @@ fun () ->
    let g = bench_graph ~extra:(fig1_extra ()) bench in
    let r = Flow.synthesize ~width flow g in
    if dot then print_string (Hft_rtl.Datapath.to_dot r.Flow.datapath)
    else begin
      print_string (Hft_rtl.Datapath.pp r.Flow.datapath);
      Hft_util.Pretty.print ~header:Flow.report_header
        [ Flow.report_row r.Flow.report ]
    end
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesise a benchmark with a DFT flow")
    Term.(const run $ bench_arg $ flow_arg $ width_arg $ dot_arg $ obs_term)

let analyze_cmd =
  let run bench width obs =
    with_obs ~cmd:"analyze" obs @@ fun () ->
    let g = bench_graph bench in
    Printf.printf "%s: %d ops, %d vars, %d states\n" bench (Graph.n_ops g)
      (Graph.n_vars g)
      (List.length (Graph.state_vars g));
    let loops = Loops.enumerate g in
    Printf.printf "CDFG loops: %d\n" (List.length loops);
    let cls = Testability.analyze g in
    Printf.printf "hard variables (behavioural): %d\n"
      (List.length (Testability.hard_variables g cls));
    let r = Flow.synthesize_conventional ~width g in
    let s = Hft_rtl.Sgraph.of_datapath r.Flow.datapath in
    Printf.printf "conventional data path: %d regs, %d fus, %d loops, %d self-loops\n"
      (Hft_rtl.Datapath.n_regs r.Flow.datapath)
      (Hft_rtl.Datapath.n_fus r.Flow.datapath)
      (List.length (Hft_rtl.Sgraph.nontrivial_loops s))
      (List.length (Hft_rtl.Sgraph.self_loop_regs s));
    print_string
      (Hft_rtl.Testability.pp_report r.Flow.datapath
         (Hft_rtl.Testability.analyze s))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Testability analysis of a benchmark")
    Term.(const run $ bench_arg $ width_arg $ obs_term)

let atpg_cmd =
  let sample_arg =
    Arg.(value & opt int 25
         & info [ "sample" ] ~docv:"N" ~doc:"Keep one fault in N.")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Run a resumable partial-scan test campaign, appending \
                   every generated test and fault-class resolution to FILE \
                   (hft-ckpt/1 JSONL) as the campaign runs.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Load the --checkpoint file first and continue the \
                   interrupted campaign (bit-identical to an uninterrupted \
                   run).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Campaign mode (--checkpoint): print the summary as JSON.")
  in
  let no_guided_arg =
    Arg.(value & flag
         & info [ "no-guided" ]
             ~doc:"Disable static-analysis ATPG guidance (restores the \
                   historical search bit for bit).")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Shard the ATPG fault campaign over N OCaml domains \
                   (default: \\$(b,HFT_JOBS), else 1).  Coverage, verdicts \
                   and ledger waterfalls are bit-identical at any N.")
  in
  (* Campaign mode: one supervised, checkpointed partial-scan campaign
     (the resumable path the robustness tests and CI exercise). *)
  let run_campaign bench width sample checkpoint resume json guided jobs =
    Hft_obs.enabled := true;
    Hft_obs.reset ();
    let g = bench_graph ~extra:(fig1_extra ()) bench in
    let r = Flow.synthesize_for_partial_scan ~width g in
    let c =
      Flow.test_campaign ~backtrack_limit:50 ~max_frames:3 ~sample ~seed:2024
        ~n_patterns:64 ~checkpoint ~resume ~guided ~jobs
        ~campaign:(bench ^ "/partial-scan/campaign") r
    in
    let atpg_cov = Hft_gate.Seq_atpg.fault_coverage c.Flow.c_atpg in
    let fsim_cov = Hft_gate.Fsim.coverage c.Flow.c_fsim in
    if json then
      print_endline
        (Hft_util.Json.to_string
           (Hft_util.Json.Obj
              [ ("schema", Hft_util.Json.String "hft-campaign/1");
                ("bench", Hft_util.Json.String bench);
                ("checkpoint", Hft_util.Json.String checkpoint);
                ("resumed", Hft_util.Json.Bool resume);
                ("faults", Hft_util.Json.Int (List.length c.Flow.c_faults));
                ("tests", Hft_util.Json.Int (Hft_obs.Ledger.n_tests ()));
                ("patterns_stored",
                 Hft_util.Json.Int c.Flow.c_patterns_stored);
                ("resumed_classes", Hft_util.Json.Int c.Flow.c_resumed_classes);
                ("resumed_tests", Hft_util.Json.Int c.Flow.c_resumed_tests);
                ("waterfall", Hft_obs.Ledger.waterfall_json ());
                ("coverage",
                 Hft_util.Json.Obj
                   [ ("atpg", Hft_util.Json.Float atpg_cov);
                     ("fsim", Hft_util.Json.Float fsim_cov) ]) ]))
    else begin
      Printf.printf
        "campaign %s: %d faults, %d tests, %d pattern rows; coverage atpg \
         %s, fsim %s\n"
        bench
        (List.length c.Flow.c_faults)
        (Hft_obs.Ledger.n_tests ())
        c.Flow.c_patterns_stored
        (Hft_util.Pretty.pct atpg_cov)
        (Hft_util.Pretty.pct fsim_cov);
      if resume then
        Printf.printf "resumed: %d classes, %d tests restored from %s\n"
          c.Flow.c_resumed_classes c.Flow.c_resumed_tests checkpoint
    end
  in
  let run bench width sample checkpoint resume json no_guided jobs obs =
    let jobs = if jobs > 0 then jobs else Hft_par.jobs_from_env () in
    match checkpoint with
    | Some file ->
      with_obs ~cmd:"atpg" obs @@ fun () ->
      run_campaign bench width sample file resume json (not no_guided) jobs
    | None ->
    with_obs ~cmd:"atpg" obs @@ fun () ->
    let g = bench_graph ~extra:(fig1_extra ()) bench in
    let rng = Hft_util.Rng.create 2024 in
    let conv = Flow.synthesize_conventional ~width g in
    let scan = Flow.synthesize_for_partial_scan ~width g in
    let atpg tag (r : Flow.result) =
      let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
      let nl = ex.Hft_gate.Expand.netlist in
      let faults =
        Hft_gate.Fault.collapsed nl
        |> List.filter (fun _ -> Hft_util.Rng.int rng sample = 0)
      in
      let scanned =
        Array.to_list r.Flow.datapath.Hft_rtl.Datapath.regs
        |> List.concat_map (fun reg ->
               if reg.Hft_rtl.Datapath.r_kind = Hft_rtl.Datapath.Scan then
                 Array.to_list ex.Hft_gate.Expand.reg_q.(reg.Hft_rtl.Datapath.r_id)
               else [])
      in
      let guidance =
        if no_guided then None else Some Hft_analysis.Guidance.provide
      in
      let stats =
        Hft_scan.Partial_scan.atpg ~backtrack_limit:50 ~max_frames:3
          ?guidance ~jobs nl ~faults ~scanned
      in
      Printf.printf "%-14s %4d faults  coverage %6s  backtracks %7d  scan cells %d\n"
        tag (List.length faults)
        (Hft_util.Pretty.pct (Hft_gate.Seq_atpg.fault_coverage stats))
        stats.Hft_gate.Seq_atpg.backtracks (List.length scanned)
    in
    atpg "no DFT" conv;
    atpg "partial scan" scan
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:
         "Gate-level sequential ATPG comparison; with --checkpoint, a \
          resumable supervised test campaign")
    Term.(const run $ bench_arg $ width_arg $ sample_arg $ checkpoint_arg
          $ resume_arg $ json_arg $ no_guided_arg $ jobs_arg $ obs_term)

let bist_cmd =
  let patterns_arg =
    Arg.(value & opt int 1024
         & info [ "patterns" ] ~docv:"N" ~doc:"Pseudorandom patterns per block.")
  in
  let run bench width patterns obs =
    with_obs ~cmd:"bist" obs @@ fun () ->
    let g = bench_graph bench in
    let r = Flow.synthesize_for_bist ~width g in
    Hft_util.Pretty.print ~header:Flow.report_header
      [ Flow.report_row r.Flow.report ];
    let report =
      Hft_bist.Run.run ~checkpoints:[ patterns / 4; patterns ]
        ~source:Hft_bist.Run.Lfsr_source ~seed:3 r.Flow.datapath
    in
    List.iter
      (fun b ->
        Printf.printf "block fu%d: %d gates, %d faults, final coverage %s\n"
          b.Hft_bist.Run.fu b.Hft_bist.Run.n_gates b.Hft_bist.Run.n_faults
          (Hft_util.Pretty.pct
             (match List.rev b.Hft_bist.Run.coverage with
              | (_, c) :: _ -> c
              | [] -> 0.0)))
      report.Hft_bist.Run.blocks;
    Printf.printf "total coverage: %s\n"
      (Hft_util.Pretty.pct report.Hft_bist.Run.total_coverage)
  in
  Cmd.v (Cmd.info "bist" ~doc:"BIST synthesis and pseudorandom campaign")
    Term.(const run $ bench_arg $ width_arg $ patterns_arg $ obs_term)

let lint_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as machine-readable JSON.")
  in
  let cc_arg =
    Arg.(value & opt int Hft_lint.Rules.default.Hft_lint.Rules.cc_threshold
         & info [ "cc-threshold" ] ~docv:"N"
             ~doc:"SCOAP controllability threshold (HFT-L007).")
  in
  let co_arg =
    Arg.(value & opt int Hft_lint.Rules.default.Hft_lint.Rules.co_threshold
         & info [ "co-threshold" ] ~docv:"N"
             ~doc:"SCOAP observability threshold (HFT-L008).")
  in
  let fig1 which () =
    let g, d = Fig1_exp.datapath which in
    (Hft_lint.Rules.ctx ~graph:g d, "fig1-binding")
  in
  let run bench flow width json cc co obs =
    let has_errors =
      with_obs ~cmd:"lint" obs @@ fun () ->
      let ctx, flow_name =
        match
          resolve_bench
            ~extra:[ ("fig1b", `Fig1 Fig1_exp.B); ("fig1c", `Fig1 Fig1_exp.C) ]
            bench
        with
        | `Fig1 which -> fig1 which ()
        | `Bench g ->
          let r = Flow.synthesize ~width flow g in
          ( Hft_lint.Rules.ctx ~graph:r.Flow.graph r.Flow.datapath,
            Flow.flow_kind_to_string flow )
      in
      let config =
        { Hft_lint.Rules.default with
          Hft_lint.Rules.cc_threshold = cc;
          Hft_lint.Rules.co_threshold = co }
      in
      let diags = Hft_lint.Engine.run ~config ctx in
      let datapath = ctx.Hft_lint.Rules.datapath in
      if json then
        print_endline
          (Hft_util.Json.to_string
             (Hft_lint.Report.to_json
                ~meta:
                  [ ("bench", Hft_util.Json.String bench);
                    ("flow", Hft_util.Json.String flow_name) ]
                ~datapath diags))
      else print_string (Hft_lint.Report.to_table ~datapath diags);
      (* The exit-status-relevant summary goes to stderr so `--json |
         jq` pipelines see only the report on stdout. *)
      Printf.eprintf "hft lint: %s (%s, %s)\n%!"
        (Hft_lint.Diagnostic.summary diags)
        bench flow_name;
      Hft_lint.Diagnostic.has_errors diags
    in
    if has_errors then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static testability analysis: SCOAP metrics and design-rule checks \
          (exit 1 on error findings; benches include fig1b/fig1c, the two \
          Figure 1 bindings)")
    Term.(const run $ bench_arg $ flow_arg $ width_arg $ json_arg $ cc_arg
          $ co_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* hft bench: the flow×bench matrix with wall-clock timings and       *)
(* engine counters, written to BENCH_hft.json so every commit has a   *)
(* comparable perf record.                                            *)

let bench_cmd =
  let quick_arg =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Small matrix (tseng/diffeq only, heavier fault sampling) \
                   for CI.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the result document to stdout as JSON.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_hft.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output file for the JSON document.")
  in
  let bench_width_arg =
    Arg.(value & opt int 4
         & info [ "w"; "width" ] ~docv:"BITS"
             ~doc:"Data-path width (4 keeps the gate-level legs fast).")
  in
  (* Per-member outcome kinds from the current ledger, for the
     guided/unguided verdict-flip gate. *)
  let outcome_map () =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (row : Hft_obs.Ledger.row) ->
        let kind = Hft_obs.Ledger.resolution_key row.Hft_obs.Ledger.lr_resolution in
        List.iter
          (fun m -> Hashtbl.replace tbl m kind)
          row.Hft_obs.Ledger.lr_members)
      (Hft_obs.Ledger.rows ());
    tbl
  in
  let is_detected k =
    List.mem k [ "drop_detected"; "podem_detected"; "salvaged" ]
  in
  let measure_cell ~width ~sample ~naive ~jobs_list bench_name flow_kind g =
    (* Fresh registry/trace per cell so counters are attributable to
       one (bench, flow) pair.  (The progress stream, if any, spans the
       whole matrix: reset leaves it running.) *)
    Hft_obs.reset ();
    let flow_name = Flow.flow_kind_to_string flow_kind in
    let now = Unix.gettimeofday in
    let t0 = now () in
    let r = Flow.synthesize ~width flow_kind g in
    let t_synth = now () -. t0 in
    (* Gate-level legs: a sampled sequential-ATPG run (PODEM effort)
       and a coverage fault-simulation run (event throughput), shared
       with the library as [Flow.test_campaign].  The primary run is
       unguided, so every legacy field stays comparable (bit-identical
       engine counters) across the guidance change; a second, guided
       run fills the "guided" sub-object. *)
    let strategy = if naive then Flow.Naive else Flow.Fast in
    let c =
      Flow.test_campaign ~strategy ~backtrack_limit:20 ~max_frames:2 ~sample
        ~seed:2024 ~n_patterns:64 ~guided:false
        ~campaign:(bench_name ^ "/" ^ flow_name ^ "/unguided") r
    in
    let faults = c.Flow.c_faults in
    let stats = c.Flow.c_atpg and fr = c.Flow.c_fsim in
    let t_atpg = c.Flow.c_t_atpg and t_fsim = c.Flow.c_t_fsim in
    let snapshot = Hft_obs.Registry.snapshot () in
    let unguided_outcomes = outcome_map () in
    let unguided_waterfall = Hft_obs.Ledger.waterfall_json () in
    let unguided_backtracks = Hft_obs.Registry.count "hft.podem.backtracks" in
    let unguided_fsim_events = Hft_obs.Registry.count "hft.fsim.events" in
    (* Guided re-run (fast strategy only: naive ignores guidance). *)
    let guided_cell =
      if naive then []
      else begin
        Hft_obs.reset ();
        let cg =
          Flow.test_campaign ~strategy ~backtrack_limit:20 ~max_frames:2
            ~sample ~seed:2024 ~n_patterns:64 ~guided:true
            ~campaign:(bench_name ^ "/" ^ flow_name ^ "/guided") r
        in
        let guided_outcomes = outcome_map () in
        let flips = ref 0 in
        Hashtbl.iter
          (fun f k1 ->
            match Hashtbl.find_opt guided_outcomes f with
            | Some k2
              when (is_detected k1 && k2 = "untestable")
                   || (k1 = "untestable" && is_detected k2) ->
              incr flips
            | _ -> ())
          unguided_outcomes;
        [ ("guided",
           Hft_util.Json.Obj
             [ ("wall_ms_atpg",
                Hft_util.Json.Float
                  (Float.round (1e5 *. cg.Flow.c_t_atpg) /. 100.0));
               ("podem_backtracks",
                Hft_util.Json.Int
                  (Hft_obs.Registry.count "hft.podem.backtracks"));
               ("atpg_coverage",
                Hft_util.Json.Float
                  (Hft_gate.Seq_atpg.fault_coverage cg.Flow.c_atpg));
               ("fsim_coverage",
                Hft_util.Json.Float (Hft_gate.Fsim.coverage cg.Flow.c_fsim));
               ("static_untestable",
                Hft_util.Json.Int
                  (Hft_obs.Registry.count "hft.podem.static_untestable"));
               ("guided_cuts",
                Hft_util.Json.Int
                  (Hft_obs.Registry.count "hft.podem.guided_cuts"));
               ("verdict_flips", Hft_util.Json.Int !flips);
               ("waterfall", Hft_obs.Ledger.waterfall_json ()) ]) ]
      end
    in
    let ms x = Float.round (1e5 *. x) /. 100.0 in
    (* Jobs matrix: the unguided leg re-run at each requested domain
       count.  Everything but the wall time must match the sequential
       cell bit for bit (bench_check.py gates on it); speedup is the
       j=1 matrix leg over the largest count, only meaningful when the
       host actually has that many cores. *)
    let jobs_cell =
      if jobs_list = [] then []
      else begin
        let legs =
          List.map
            (fun j ->
              Hft_obs.reset ();
              let cj =
                Flow.test_campaign ~strategy ~backtrack_limit:20 ~max_frames:2
                  ~sample ~seed:2024 ~n_patterns:64 ~guided:false ~jobs:j
                  ~campaign:
                    (Printf.sprintf "%s/%s/unguided-j%d" bench_name flow_name j)
                  r
              in
              let obj =
                Hft_util.Json.Obj
                  [ ("jobs", Hft_util.Json.Int j);
                    ("wall_ms_atpg", Hft_util.Json.Float (ms cj.Flow.c_t_atpg));
                    ("faults",
                     Hft_util.Json.Int (List.length cj.Flow.c_faults));
                    ("podem_backtracks",
                     Hft_util.Json.Int
                       (Hft_obs.Registry.count "hft.podem.backtracks"));
                    ("fsim_events",
                     Hft_util.Json.Int
                       (Hft_obs.Registry.count "hft.fsim.events"));
                    ("atpg_coverage",
                     Hft_util.Json.Float
                       (Hft_gate.Seq_atpg.fault_coverage cj.Flow.c_atpg));
                    ("fsim_coverage",
                     Hft_util.Json.Float (Hft_gate.Fsim.coverage cj.Flow.c_fsim));
                    ("waterfall", Hft_obs.Ledger.waterfall_json ());
                    (* Scheduler telemetry for this leg; jobs-dependent
                       by nature, so bench_check compares everything
                       else bit for bit and gates this one on its
                       conservation laws instead. *)
                    ("parallel", Hft_par.Stats.to_json cj.Flow.c_par) ]
              in
              (j, cj.Flow.c_t_atpg, obj))
            jobs_list
        in
        let wall j0 =
          List.find_map (fun (j, w, _) -> if j = j0 then Some w else None) legs
        in
        let jmax = List.fold_left max 1 jobs_list in
        let speedup =
          match (wall 1, wall jmax) with
          | Some w1, Some wn when jmax > 1 && wn > 0.0 ->
            [ ("speedup",
               Hft_util.Json.Float (Float.round (100.0 *. w1 /. wn) /. 100.0))
            ]
          | _ -> []
        in
        ("jobs_matrix",
         Hft_util.Json.List (List.map (fun (_, _, o) -> o) legs))
        :: speedup
      end
    in
    let cell =
      Hft_util.Json.Obj
        ([ ("bench", Hft_util.Json.String bench_name);
          ("flow", Hft_util.Json.String flow_name);
          ("wall_ms",
           Hft_util.Json.Obj
             [ ("synth", Hft_util.Json.Float (ms t_synth));
               ("atpg", Hft_util.Json.Float (ms t_atpg));
               ("fsim", Hft_util.Json.Float (ms t_fsim));
               ("total", Hft_util.Json.Float (ms (t_synth +. t_atpg +. t_fsim)))
             ]);
          ("faults", Hft_util.Json.Int (List.length faults));
          ("podem_backtracks", Hft_util.Json.Int unguided_backtracks);
          ("fsim_events", Hft_util.Json.Int unguided_fsim_events);
          ("atpg_coverage",
           Hft_util.Json.Float (Hft_gate.Seq_atpg.fault_coverage stats));
          ("fsim_coverage", Hft_util.Json.Float (Hft_gate.Fsim.coverage fr));
          ("patterns_stored", Hft_util.Json.Int c.Flow.c_patterns_stored);
          ("waterfall", unguided_waterfall);
          ("strategy",
           Hft_util.Json.String (if naive then "naive" else "fast"));
          ("report",
           Hft_util.Json.Obj
             [ ("regs", Hft_util.Json.Int r.Flow.report.Flow.n_registers);
               ("scan_regs",
                Hft_util.Json.Int r.Flow.report.Flow.n_scan_registers);
               ("test_regs",
                Hft_util.Json.Int r.Flow.report.Flow.n_test_registers);
               ("loops", Hft_util.Json.Int r.Flow.report.Flow.datapath_loops);
               ("area_overhead",
                Hft_util.Json.Float r.Flow.report.Flow.area_overhead);
               ("sessions", Hft_util.Json.Int r.Flow.report.Flow.test_sessions)
             ]);
          ("counters", Hft_obs.Export.metrics_json ~snapshot ());
          ("parallel", Hft_par.Stats.to_json c.Flow.c_par) ]
         @ guided_cell @ jobs_cell)
    in
    let row =
      [ bench_name; flow_name;
        Printf.sprintf "%.2f" (1e3 *. t_synth);
        Printf.sprintf "%.2f" (1e3 *. t_atpg);
        Printf.sprintf "%.2f" (1e3 *. t_fsim);
        string_of_int unguided_backtracks;
        string_of_int unguided_fsim_events ]
    in
    (cell, row)
  in
  let naive_arg =
    Arg.(value & flag
         & info [ "naive" ]
             ~doc:"Use the pre-optimization engines (no fault collapsing, \
                   no dropping, full-resimulation fault simulation of pure \
                   random patterns) — for before/after comparison.")
  in
  let jobs_list_arg =
    Arg.(value & opt string ""
         & info [ "jobs" ] ~docv:"LIST"
             ~doc:"Comma-separated domain counts (e.g. 1,2,4): re-run each \
                   unguided ATPG leg at every count and record a per-cell \
                   jobs_matrix (wall time, counters, waterfall — everything \
                   but wall time must match the sequential cell) plus a \
                   speedup field.")
  in
  let run quick json out width naive jobs obs =
    with_obs ~cmd:"bench" obs @@ fun () ->
    Hft_obs.enabled := true;
    let jobs_list =
      if jobs = "" then []
      else
        List.filter_map
          (fun s ->
            match int_of_string_opt (String.trim s) with
            | Some j when j >= 1 -> Some (Hft_par.clamp_jobs j)
            | _ -> None)
          (String.split_on_char ',' jobs)
    in
    let benches =
      if quick then [ "tseng"; "diffeq" ] else bench_names
    in
    let sample = if quick then 40 else 20 in
    let cells_rows =
      List.concat_map
        (fun bname ->
          let g = bench_graph bname in
          List.map
            (fun (_, kind) ->
              measure_cell ~width ~sample ~naive ~jobs_list bname kind g)
            Flow.flow_kinds)
        benches
    in
    let cells = List.map fst cells_rows and rows = List.map snd cells_rows in
    let doc =
      Hft_util.Json.Obj
        [ ("schema", Hft_util.Json.String "hft-bench/1");
          ("created_unix", Hft_util.Json.Float (Unix.time ()));
          ("width", Hft_util.Json.Int width);
          ("quick", Hft_util.Json.Bool quick);
          ("host_cores",
           Hft_util.Json.Int (Domain.recommended_domain_count ()));
          ("results", Hft_util.Json.List cells) ]
    in
    let text = Hft_util.Json.to_string doc in
    let oc = open_out out in
    output_string oc text;
    output_char oc '\n';
    close_out oc;
    if json then print_endline text
    else
      Hft_obs.Table.emit
        ~header:
          [ "bench"; "flow"; "synth ms"; "atpg ms"; "fsim ms";
            "podem btk"; "fsim events" ]
        rows;
    Printf.eprintf "hft bench: wrote %s (%d cells)\n%!" out
      (List.length cells)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the flow×bench matrix with wall-clock timings and engine \
          counters; writes BENCH_hft.json")
    Term.(const run $ quick_arg $ json_arg $ out_arg $ bench_width_arg
          $ naive_arg $ jobs_list_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* hft report: run a test campaign with the flight recorder on and    *)
(* present the forensics — the coverage waterfall (where every        *)
(* collapsed fault class ended up) and the most expensive faults.     *)

let report_cmd =
  let report_bench_arg =
    let doc =
      Printf.sprintf
        "Benchmark behaviour (%s).  Required unless --journal-in is given."
        (String.concat ", " bench_names)
    in
    Arg.(value & opt (some string) None
         & info [ "b"; "bench" ] ~docv:"NAME" ~doc)
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as machine-readable JSON.")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K"
             ~doc:"Rows in the most-expensive-faults table.")
  in
  let sample_arg =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N" ~doc:"Keep one fault in N.")
  in
  let no_guided_arg =
    Arg.(value & flag
         & info [ "no-guided" ]
             ~doc:"Disable static-analysis ATPG guidance (restores the \
                   historical search bit for bit).")
  in
  let journal_in_arg =
    Arg.(value & opt (some string) None
         & info [ "journal-in" ] ~docv:"FILE"
             ~doc:"Offline mode: rebuild the coverage waterfall from an \
                   exported tape (--journal-out event JSONL or --ledger-out \
                   class JSONL) instead of running a campaign.  --bench is \
                   not needed.  Ledger tapes are exact; journal tapes cover \
                   whatever the bounded event ring still held at export.")
  in
  (* Offline mode: no engines run, the waterfall is rebuilt from the
     tape alone — so a forensics report survives the run that made it. *)
  let run_offline file top json =
    let lines =
      match open_in file with
      | exception Sys_error msg ->
        Printf.eprintf "hft report: %s\n%!" msg;
        exit 2
      | ic ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> close_in ic; List.rev acc
        in
        go []
    in
    match Hft_obs.Progress.offline_of_lines lines with
    | Error msg ->
      Printf.eprintf "hft report: %s: %s\n%!" file msg;
      exit 2
    | Ok off ->
      let expensive =
        List.filteri (fun i _ -> i < top)
          off.Hft_obs.Progress.off_expensive
      in
      if json then
        print_endline
          (Hft_util.Json.to_string
             (Hft_util.Json.Obj
                [ ("schema", Hft_util.Json.String "hft-report/1");
                  ("source", Hft_util.Json.String
                               off.Hft_obs.Progress.off_source);
                  ("file", Hft_util.Json.String file);
                  ("classes", Hft_util.Json.Int
                                off.Hft_obs.Progress.off_classes);
                  ("faults", Hft_util.Json.Int
                               off.Hft_obs.Progress.off_faults);
                  ("waterfall",
                   Hft_obs.Progress.offline_waterfall_json off);
                  ("tests", Hft_util.Json.Int
                              off.Hft_obs.Progress.off_tests);
                  ("expensive",
                   Hft_util.Json.List
                     (List.map
                        (fun (rep, outcome, cost) ->
                          Hft_util.Json.Obj
                            [ ("rep", Hft_util.Json.String rep);
                              ("resolution", Hft_util.Json.String outcome);
                              ("cost", Hft_util.Json.Int cost) ])
                        expensive)) ]))
      else begin
        Printf.printf "coverage waterfall (offline, %s tape %s):\n"
          off.Hft_obs.Progress.off_source file;
        Hft_util.Pretty.print ~header:[ "stage"; "classes"; "faults" ]
          ([ [ "collapsed";
               string_of_int off.Hft_obs.Progress.off_classes;
               string_of_int off.Hft_obs.Progress.off_faults ] ]
           @ List.map
               (fun (key, (classes, faults)) ->
                 [ key; string_of_int classes; string_of_int faults ])
               off.Hft_obs.Progress.off_waterfall);
        Printf.printf "%d tests on tape\n" off.Hft_obs.Progress.off_tests;
        if expensive <> [] then begin
          Printf.printf "\nmost expensive fault classes (top %d):\n"
            (List.length expensive);
          Hft_util.Pretty.print ~header:[ "fault"; "resolution"; "cost" ]
            (List.map
               (fun (rep, outcome, cost) ->
                 [ rep; outcome; string_of_int cost ])
               expensive)
        end
      end
  in
  let run bench flow width sample top json no_guided journal_in obs =
    match journal_in with
    | Some file -> run_offline file top json
    | None ->
    let bench =
      match bench with
      | Some b -> b
      | None ->
        Printf.eprintf
          "hft report: --bench is required (or use --journal-in FILE)\n%!";
        exit 2
    in
    with_obs ~cmd:"report" obs @@ fun () ->
    Hft_obs.enabled := true;
    Hft_obs.reset ();
    let g = bench_graph ~extra:(fig1_extra ()) bench in
    let r = Flow.synthesize ~width flow g in
    let c =
      Flow.test_campaign ~backtrack_limit:50 ~max_frames:3 ~sample ~seed:2024
        ~n_patterns:64 ~guided:(not no_guided)
        ~campaign:(bench ^ "/" ^ Flow.flow_kind_to_string flow) r
    in
    let flow_name = Flow.flow_kind_to_string flow in
    let n_faults = List.length c.Flow.c_faults in
    let waterfall = Hft_obs.Ledger.waterfall () in
    let expensive = Hft_obs.Ledger.top_expensive ~k:top in
    if json then
      print_endline
        (Hft_util.Json.to_string
           (Hft_util.Json.Obj
              [ ("schema", Hft_util.Json.String "hft-report/1");
                ("bench", Hft_util.Json.String bench);
                ("flow", Hft_util.Json.String flow_name);
                ("faults", Hft_util.Json.Int n_faults);
                ("waterfall", Hft_obs.Ledger.waterfall_json ());
                ("coverage",
                 Hft_util.Json.Obj
                   [ ("atpg",
                      Hft_util.Json.Float
                        (Hft_gate.Seq_atpg.fault_coverage c.Flow.c_atpg));
                     ("fsim",
                      Hft_util.Json.Float
                        (Hft_gate.Fsim.coverage c.Flow.c_fsim)) ]);
                ("tests", Hft_util.Json.Int (Hft_obs.Ledger.n_tests ()));
                ("patterns_stored",
                 Hft_util.Json.Int c.Flow.c_patterns_stored);
                ("guided", Hft_util.Json.Bool (not no_guided));
                ("guidance",
                 Hft_util.Json.Obj
                   [ ("static_untestable",
                      Hft_util.Json.Int
                        (Hft_obs.Registry.count "hft.podem.static_untestable"));
                     ("guided_cuts",
                      Hft_util.Json.Int
                        (Hft_obs.Registry.count "hft.podem.guided_cuts"));
                     ("guided_decisions",
                      Hft_util.Json.Int
                        (Hft_obs.Registry.count "hft.podem.guided_decisions"))
                   ]);
                ("expensive",
                 Hft_util.Json.List
                   (List.map Hft_obs.Ledger.row_to_json expensive)) ]))
    else begin
      Printf.printf "coverage waterfall (%s, %s):\n" bench flow_name;
      Hft_util.Pretty.print ~header:[ "stage"; "classes"; "faults" ]
        ([ [ "total (sampled)"; "-"; string_of_int n_faults ];
           [ "collapsed";
             string_of_int (Hft_obs.Ledger.n_classes ());
             string_of_int (Hft_obs.Ledger.total_faults ()) ] ]
         @ List.map
             (fun (key, (classes, faults)) ->
               [ key; string_of_int classes; string_of_int faults ])
             waterfall);
      Printf.printf
        "%d tests generated, %d pattern rows stored; coverage: atpg %s, \
         fsim %s\n"
        (Hft_obs.Ledger.n_tests ())
        c.Flow.c_patterns_stored
        (Hft_util.Pretty.pct (Hft_gate.Seq_atpg.fault_coverage c.Flow.c_atpg))
        (Hft_util.Pretty.pct (Hft_gate.Fsim.coverage c.Flow.c_fsim));
      if not no_guided then
        Printf.printf
          "guidance: %d class(es) proven untestable statically, %d guided \
           cut(s), %d guided decision(s)\n"
          (Hft_obs.Registry.count "hft.podem.static_untestable")
          (Hft_obs.Registry.count "hft.podem.guided_cuts")
          (Hft_obs.Registry.count "hft.podem.guided_decisions");
      if expensive <> [] then begin
        Printf.printf "\nmost expensive fault classes (top %d):\n"
          (List.length expensive);
        Hft_util.Pretty.print
          ~header:
            [ "class"; "fault"; "resolution"; "fsim ev"; "impl"; "btk";
              "cost" ]
          (List.map
             (fun (row : Hft_obs.Ledger.row) ->
               [ string_of_int row.Hft_obs.Ledger.lr_class;
                 row.Hft_obs.Ledger.lr_rep;
                 Hft_obs.Ledger.resolution_to_string
                   row.Hft_obs.Ledger.lr_resolution;
                 string_of_int row.Hft_obs.Ledger.lr_fsim_events;
                 string_of_int row.Hft_obs.Ledger.lr_implications;
                 string_of_int row.Hft_obs.Ledger.lr_backtracks;
                 string_of_int (Hft_obs.Ledger.cost row) ])
             expensive)
      end
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a test campaign with the flight recorder on and report the \
          fault forensics: coverage waterfall (total, collapsed, dropped, \
          PODEM-detected, aborted, untestable) and the most expensive fault \
          classes (benches include fig1b/fig1c); with --journal-in, rebuild \
          the waterfall offline from an exported tape")
    Term.(const run $ report_bench_arg $ flow_arg $ width_arg $ sample_arg
          $ top_arg $ json_arg $ no_guided_arg $ journal_in_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* hft profile: where did the campaign's time go?  Live mode runs a   *)
(* campaign (same knobs as report) and attributes wall time three     *)
(* ways: per-phase self time from the span tree, per-worker busy/idle *)
(* /stall from the scheduler telemetry, and per-class charged cost    *)
(* from the ledger (the same table report prints, bit for bit).       *)
(* Offline mode replays an exported tape instead of running engines.  *)

let profile_cmd =
  let profile_bench_arg =
    let doc =
      Printf.sprintf
        "Benchmark behaviour (%s).  Required unless --journal-in is given."
        (String.concat ", " bench_names)
    in
    Arg.(value & opt (some string) None
         & info [ "b"; "bench" ] ~docv:"NAME" ~doc)
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the profile as machine-readable JSON.")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K"
             ~doc:"Rows in the top-classes-by-charged-cost table.")
  in
  let sample_arg =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N" ~doc:"Keep one fault in N.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domain count for the ATPG phase (see atpg --jobs); the \
                   per-worker table is the point of this command.")
  in
  let folded_out_arg =
    Arg.(value & opt (some string) None
         & info [ "folded-out" ] ~docv:"FILE"
             ~doc:"Write folded stacks (one 'a;b;c <microseconds>' line per \
                   path, flamegraph.pl input) for the run.")
  in
  let journal_in_arg =
    Arg.(value & opt (some string) None
         & info [ "journal-in" ] ~docv:"FILE"
             ~doc:"Offline mode: attribute time from an exported tape \
                   (--journal-out phase events, or --ledger-out per-class \
                   charged costs) instead of running a campaign.")
  in
  (* The per-class cost table must render byte-identically to hft
     report's, so both text and JSON shapes reuse the same ledger
     accessors and the same column recipe. *)
  let expensive_rows rows =
    List.map
      (fun (row : Hft_obs.Ledger.row) ->
        [ string_of_int row.Hft_obs.Ledger.lr_class;
          row.Hft_obs.Ledger.lr_rep;
          Hft_obs.Ledger.resolution_to_string row.Hft_obs.Ledger.lr_resolution;
          string_of_int row.Hft_obs.Ledger.lr_fsim_events;
          string_of_int row.Hft_obs.Ledger.lr_implications;
          string_of_int row.Hft_obs.Ledger.lr_backtracks;
          string_of_int (Hft_obs.Ledger.cost row) ])
      rows
  in
  let print_expensive rows =
    if rows <> [] then begin
      Printf.printf "\nmost expensive fault classes (top %d):\n"
        (List.length rows);
      Hft_util.Pretty.print
        ~header:
          [ "class"; "fault"; "resolution"; "fsim ev"; "impl"; "btk"; "cost" ]
        (expensive_rows rows)
    end
  in
  let self_json self =
    Hft_util.Json.List
      (List.map
         (fun (name, s) ->
           Hft_util.Json.Obj
             [ ("name", Hft_util.Json.String name);
               ("self_ms",
                Hft_util.Json.Float (Float.round (1e5 *. s) /. 100.0)) ])
         self)
  in
  let print_workers (par : Hft_par.Stats.t) =
    let ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6) in
    Printf.printf
      "\nscheduler: jobs %d · waves %d · tasks %d · steals %d · spec \
       hit/miss %d/%d · inline %d · occupancy %s · utilization %s\n"
      par.Hft_par.Stats.s_jobs par.Hft_par.Stats.s_waves
      par.Hft_par.Stats.s_tasks
      (Hft_par.Stats.steals par)
      (Hft_par.Stats.spec_hits par)
      (Hft_par.Stats.spec_misses par)
      (Hft_par.Stats.inline par)
      (Hft_util.Pretty.pct (Hft_par.Stats.occupancy par))
      (Hft_util.Pretty.pct (Hft_par.Stats.utilization par));
    Hft_util.Pretty.print
      ~header:
        [ "worker"; "eval"; "classes"; "steals"; "stolen"; "hits"; "miss";
          "busy ms"; "idle ms"; "stall ms" ]
      (Array.to_list
         (Array.map
            (fun (w : Hft_par.Stats.worker) ->
              [ (if w.Hft_par.Stats.w_domain = 0 then "orchestrator"
                 else Printf.sprintf "worker-%d" w.Hft_par.Stats.w_domain);
                string_of_int w.Hft_par.Stats.w_evaluated;
                string_of_int w.Hft_par.Stats.w_classes;
                string_of_int w.Hft_par.Stats.w_steals;
                string_of_int w.Hft_par.Stats.w_stolen;
                string_of_int w.Hft_par.Stats.w_spec_hits;
                string_of_int w.Hft_par.Stats.w_spec_misses;
                ms w.Hft_par.Stats.w_busy_ns;
                ms w.Hft_par.Stats.w_idle_ns;
                ms w.Hft_par.Stats.w_stall_ns ])
            par.Hft_par.Stats.s_workers))
  in
  (* Offline: phase self time comes from the journal's phase_end events
     (they carry elapsed seconds), the scheduler summary from the
     Shard_stats event, and per-class costs from ledger-tape rows — so
     the profile of a finished run needs only its tapes. *)
  let run_offline file top json =
    let lines =
      match open_in file with
      | exception Sys_error msg ->
        Printf.eprintf "hft profile: %s\n%!" msg;
        exit 2
      | ic ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> close_in ic; List.rev acc
        in
        go []
    in
    let docs =
      List.filter_map
        (fun l ->
          if String.trim l = "" then None
          else Result.to_option (Hft_util.Json.parse l))
        lines
    in
    if docs = [] then begin
      Printf.eprintf "hft profile: %s: no parseable JSONL lines\n%!" file;
      exit 2
    end;
    let str k j =
      match Hft_util.Json.member k j with
      | Some (Hft_util.Json.String s) -> Some s
      | _ -> None
    in
    let num k j =
      match Hft_util.Json.member k j with
      | Some (Hft_util.Json.Float f) -> Some f
      | Some (Hft_util.Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    (* Σ elapsed (ms) per phase name, tape order first-seen. *)
    let phases : (string * float) list =
      List.fold_left
        (fun acc d ->
          match (str "type" d, str "name" d, num "elapsed_ms" d) with
          | (Some "phase_end", Some name, Some e) ->
            (match List.assoc_opt name acc with
             | Some _ ->
               List.map
                 (fun (n, t) -> if n = name then (n, t +. e) else (n, t))
                 acc
             | None -> acc @ [ (name, e) ])
          | _ -> acc)
        [] docs
    in
    let shard = List.find_opt (fun d -> str "type" d = Some "shard_stats") docs in
    let expensive =
      match Hft_obs.Progress.offline_of_lines lines with
      | Ok off when off.Hft_obs.Progress.off_expensive <> [] ->
        List.filteri (fun i _ -> i < top) off.Hft_obs.Progress.off_expensive
      | _ -> []
    in
    if json then
      print_endline
        (Hft_util.Json.to_string
           (Hft_util.Json.Obj
              [ ("schema", Hft_util.Json.String "hft-profile/1");
                ("file", Hft_util.Json.String file);
                ("phases",
                 Hft_util.Json.List
                   (List.map
                      (fun (n, t) ->
                        Hft_util.Json.Obj
                          [ ("name", Hft_util.Json.String n);
                            ("elapsed_ms", Hft_util.Json.Float t) ])
                      phases));
                ("parallel",
                 match shard with Some d -> d | None -> Hft_util.Json.Null);
                ("expensive",
                 Hft_util.Json.List
                   (List.map
                      (fun (rep, outcome, cost) ->
                        Hft_util.Json.Obj
                          [ ("rep", Hft_util.Json.String rep);
                            ("resolution", Hft_util.Json.String outcome);
                            ("cost", Hft_util.Json.Int cost) ])
                      expensive)) ]))
    else begin
      Printf.printf "profile (offline tape %s):\n" file;
      if phases <> [] then
        Hft_util.Pretty.print ~header:[ "phase"; "elapsed ms" ]
          (List.map
             (fun (n, t) -> [ n; Printf.sprintf "%.2f" t ])
             phases)
      else Printf.printf "(no phase events on tape)\n";
      (match shard with
       | Some d ->
         Printf.printf
           "scheduler: jobs %.0f · tasks %.0f · steals %.0f · spec hit/miss \
            %.0f/%.0f · utilization %.1f%%\n"
           (Option.value ~default:1.0 (num "jobs" d))
           (Option.value ~default:0.0 (num "tasks" d))
           (Option.value ~default:0.0 (num "steals" d))
           (Option.value ~default:0.0 (num "spec_hits" d))
           (Option.value ~default:0.0 (num "spec_misses" d))
           (100.0 *. Option.value ~default:0.0 (num "utilization" d))
       | None -> ());
      if expensive <> [] then begin
        Printf.printf "\nmost expensive fault classes (top %d):\n"
          (List.length expensive);
        Hft_util.Pretty.print ~header:[ "fault"; "resolution"; "cost" ]
          (List.map
             (fun (rep, outcome, cost) -> [ rep; outcome; string_of_int cost ])
             expensive)
      end
    end
  in
  let run bench flow width sample top jobs folded_out json journal_in obs =
    match journal_in with
    | Some file -> run_offline file top json
    | None ->
    let bench =
      match bench with
      | Some b -> b
      | None ->
        Printf.eprintf
          "hft profile: --bench is required (or use --journal-in FILE)\n%!";
        exit 2
    in
    with_obs ~cmd:"profile" obs @@ fun () ->
    Hft_obs.enabled := true;
    Hft_obs.reset ();
    let g = bench_graph ~extra:(fig1_extra ()) bench in
    let r = Flow.synthesize ~width flow g in
    let c =
      Flow.test_campaign ~backtrack_limit:50 ~max_frames:3 ~sample ~seed:2024
        ~n_patterns:64 ~jobs
        ~campaign:(bench ^ "/" ^ Flow.flow_kind_to_string flow) r
    in
    let self = Hft_obs.Export.self_times () in
    let expensive = Hft_obs.Ledger.top_expensive ~k:top in
    (match folded_out with
     | Some file ->
       let oc = open_out file in
       output_string oc (Hft_obs.Export.folded_stacks ());
       close_out oc;
       Printf.eprintf "hft profile: wrote folded stacks %s\n%!" file
     | None -> ());
    if json then
      print_endline
        (Hft_util.Json.to_string
           (Hft_util.Json.Obj
              [ ("schema", Hft_util.Json.String "hft-profile/1");
                ("bench", Hft_util.Json.String bench);
                ("flow",
                 Hft_util.Json.String (Flow.flow_kind_to_string flow));
                ("jobs", Hft_util.Json.Int jobs);
                ("self", self_json self);
                ("parallel", Hft_par.Stats.to_json c.Flow.c_par);
                ("expensive",
                 Hft_util.Json.List
                   (List.map Hft_obs.Ledger.row_to_json expensive)) ]))
    else begin
      Printf.printf "self-time attribution (%s, %s, jobs %d):\n" bench
        (Flow.flow_kind_to_string flow) jobs;
      Hft_util.Pretty.print ~header:[ "span"; "self ms" ]
        (List.map
           (fun (name, s) -> [ name; Printf.sprintf "%.2f" (1e3 *. s) ])
           self);
      print_workers c.Flow.c_par;
      print_expensive expensive
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Attribute a campaign's wall time: per-phase self time from the \
          span tree, per-worker busy/idle/stall from the scheduler \
          telemetry, and the top classes by charged cost (byte-identical \
          to report's table).  --folded-out writes flamegraph.pl input; \
          --journal-in profiles an exported tape offline instead of \
          running a campaign.")
    Term.(const run $ profile_bench_arg $ flow_arg $ width_arg $ sample_arg
          $ top_arg $ jobs_arg $ folded_out_arg $ json_arg $ journal_in_arg
          $ obs_term)

(* ------------------------------------------------------------------ *)
(* hft watch: tail an hft-progress/1 stream as a terminal dashboard.  *)

let watch_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"STREAM"
             ~doc:"hft-progress/1 JSONL file (a --progress-out path), live \
                   or completed.")
  in
  let no_follow_arg =
    Arg.(value & flag
         & info [ "no-follow" ]
             ~doc:"Render the stream's current state once and exit instead \
                   of tailing until the final snapshot.")
  in
  let interval_arg =
    Arg.(value & opt float 0.5
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Poll interval while tailing.")
  in
  let run file no_follow interval =
    let interval = Float.max 0.05 interval in
    let tty = Unix.isatty Unix.stdout in
    (* A watch is often started before the campaign: wait for the file
       to appear (bounded, so a typo doesn't hang forever), unless we
       were asked for a one-shot render. *)
    let rec open_stream tries =
      match open_in_bin file with
      | ic -> ic
      | exception Sys_error msg ->
        if no_follow || tries >= 600 then begin
          Printf.eprintf "hft watch: %s\n%!" msg;
          exit 2
        end
        else begin
          Unix.sleepf interval;
          open_stream (tries + 1)
        end
    in
    let ic = open_stream 0 in
    let carry = Buffer.create 256 in
    let chunk = Bytes.create 65536 in
    let view = ref Hft_obs.Progress.empty_view in
    let feed_line line =
      view := Hft_obs.Progress.view_line !view line;
      (* Non-TTY live tail: one brief line per snapshot keeps logs
         readable; the full dashboard prints once at the end. *)
      if (not tty) && not no_follow then
        match Hft_util.Json.parse line with
        | Ok j
          when Hft_util.Json.member "type" j
               = Some (Hft_util.Json.String "snapshot") ->
          print_endline (Hft_obs.Progress.snapshot_brief j)
        | _ -> ()
    in
    (* Read whatever the writer has flushed; only complete lines are
       folded, a torn tail stays in [carry] for the next poll. *)
    let drain () =
      let fresh = ref 0 in
      let rec slurp () =
        let n = input ic chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes carry chunk 0 n;
          slurp ()
        end
      in
      (try slurp () with End_of_file -> ());
      let s = Buffer.contents carry in
      Buffer.clear carry;
      let rec lines from =
        match String.index_from_opt s from '\n' with
        | Some i ->
          feed_line (String.sub s from (i - from));
          incr fresh;
          lines (i + 1)
        | None ->
          Buffer.add_string carry
            (String.sub s from (String.length s - from))
      in
      lines 0;
      !fresh
    in
    let redraw () =
      if tty then begin
        (* Home the cursor and erase below: in-place update without
           scrollback spam. *)
        print_string "\027[H\027[J";
        print_string (Hft_obs.Progress.render_view !view);
        flush stdout
      end
    in
    let rec loop () =
      let fresh = drain () in
      if fresh > 0 then redraw ();
      if no_follow || (!view).Hft_obs.Progress.v_finished then ()
      else begin
        Unix.sleepf interval;
        loop ()
      end
    in
    if tty then print_string "\027[2J";
    loop ();
    close_in ic;
    if not tty then print_string (Hft_obs.Progress.render_view !view)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Tail an hft-progress/1 telemetry stream (--progress-out) as a \
          live terminal dashboard: coverage bar, phase, rates, ETA, top \
          expensive classes.  Exits when the stream's final snapshot \
          arrives; --no-follow renders the current state once.")
    Term.(const run $ file_arg $ no_follow_arg $ interval_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (name, g) ->
        Printf.printf "%-11s %2d ops, %d states (%s)\n" name (Graph.n_ops g)
          (List.length (Graph.state_vars g))
          (String.concat ", "
             (List.map
                (fun (c, n) ->
                  Printf.sprintf "%d %s" n (Op.fu_class_to_string c))
                (Graph.op_profile g))))
      (Bench_suite.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark behaviours")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* fuzz: the continuous bandit-guided differential campaign.          *)

let fuzz_cmd =
  let run seed trials duration corpus resume step_budget json obs =
    let summary =
      with_obs ~cmd:"fuzz" obs @@ fun () ->
      let summary =
        Hft_fuzz.Campaign.run
          { Hft_fuzz.Campaign.c_seed = seed;
            c_trials = trials;
            c_duration = duration;
            c_corpus = corpus;
            c_resume = resume;
            c_step_budget = step_budget }
      in
      if json then
        print_endline
          (Hft_util.Json.to_string (Hft_fuzz.Campaign.summary_json summary))
      else begin
        Printf.printf
          "fuzz: %d trial(s) this run (%d total), stopped on %s\n"
          summary.Hft_fuzz.Campaign.y_trials_run
          summary.Hft_fuzz.Campaign.y_trials_total
          summary.Hft_fuzz.Campaign.y_stop;
        Printf.printf
          "  corpus %s: %d finding class(es), %d real (non-canary)\n" corpus
          summary.Hft_fuzz.Campaign.y_corpus_size
          summary.Hft_fuzz.Campaign.y_real_findings;
        Printf.printf "  this run: %d new, %d re-found, %d escalation(s)\n"
          summary.Hft_fuzz.Campaign.y_new_findings
          summary.Hft_fuzz.Campaign.y_refound
          summary.Hft_fuzz.Campaign.y_escalations;
        List.iter
          (fun a ->
            Printf.printf "  arm %-10s pulls %3d  reward %g\n"
              a.Hft_fuzz.Campaign.as_name a.Hft_fuzz.Campaign.as_pulls
              a.Hft_fuzz.Campaign.as_reward_sum)
          summary.Hft_fuzz.Campaign.y_arms
      end;
      summary
    in
    (* Canary findings are the regression arm doing its job; only a
       non-canary class is a real cross-engine disagreement. *)
    if summary.Hft_fuzz.Campaign.y_real_findings > 0 then exit 1
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Campaign seed.  Two runs with the same seed and trial \
                   budget produce identical findings, arm choices and \
                   corpus files.")
  in
  let trials_arg =
    Arg.(value & opt int 32
         & info [ "trials" ] ~docv:"N"
             ~doc:"Total committed trials to reach, including trials \
                   already in the state file when resuming.")
  in
  let duration_arg =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECS"
             ~doc:"Optional wall-clock budget.  Affects only when the \
                   campaign stops, never what a committed trial contains.")
  in
  let corpus_arg =
    Arg.(value & opt string "fuzz-corpus"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Corpus directory: the crash-only campaign state tape \
                   plus one self-contained minimized reproducer JSON per \
                   finding class.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Continue an interrupted campaign from the corpus state \
                   tape: committed trials replay into the bandit \
                   bit-identically and the interrupted trial re-runs.")
  in
  let step_budget_arg =
    Arg.(value & opt int Hft_fuzz.Oracle.default_step_budget
         & info [ "step-budget" ] ~docv:"STEPS"
             ~doc:"Deterministic per-engine-attempt deadline in search \
                   steps; an attempt that exhausts it becomes a finding.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the campaign summary as one JSON \
                                 object.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Continuous bandit-guided differential fuzz campaign (exit 1 when \
          a non-canary finding class exists; canary classes from the \
          regression arm are expected)")
    Term.(const run $ seed_arg $ trials_arg $ duration_arg $ corpus_arg
          $ resume_arg $ step_budget_arg $ json_arg $ obs_term)

(* Exit-code contract: 0 success, 1 engine failure (an exception out of
   a run, including chaos injections), 2 bad input or usage (typed
   validation diagnostics, unknown benches, cmdliner parse errors).
   Uncaught errors print a single JSON object to stderr so `--json`
   pipelines reading stdout stay parseable. *)
let () =
  let info =
    Cmd.info "hft" ~version:"1.0.0"
      ~doc:"High-level synthesis for testability (DAC'96 survey reproduction)"
  in
  let group =
    Cmd.group info
      [ synth_cmd; analyze_cmd; atpg_cmd; bist_cmd; lint_cmd; bench_cmd;
        report_cmd; profile_cmd; watch_cmd; list_cmd; fuzz_cmd ]
  in
  let error_json fields =
    Printf.eprintf "%s\n%!"
      (Hft_util.Json.to_string
         (Hft_util.Json.Obj [ ("error", Hft_util.Json.Obj fields) ]))
  in
  let code =
    try
      (* Inside the handler: a malformed HFT_CHAOS_* environment must hit
         the exit-2 invalid-input contract, not escape as a backtrace. *)
      Hft_robust.Chaos.of_env ();
      match Cmd.eval ~catch:false group with
      | c when c = Cmd.Exit.cli_error -> 2
      | c when c = Cmd.Exit.internal_error -> 1
      | c -> c
    with
    | Hft_robust.Validation.Invalid d ->
      (match Hft_robust.Validation.to_json d with
       | Hft_util.Json.Obj fields ->
         error_json (("kind", Hft_util.Json.String "invalid-input") :: fields)
       | j -> error_json [ ("kind", Hft_util.Json.String "invalid-input");
                           ("detail", j) ]);
      2
    | Hft_robust.Chaos.Injection { site; seq } ->
      error_json
        [ ("kind", Hft_util.Json.String "chaos-injection");
          ("site", Hft_util.Json.String site);
          ("seq", Hft_util.Json.Int seq) ];
      1
    | e ->
      error_json
        [ ("kind", Hft_util.Json.String "engine-failure");
          ("message", Hft_util.Json.String (Printexc.to_string e)) ];
      1
  in
  exit code
