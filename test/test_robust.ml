(* Hft_robust: typed failures, deterministic chaos, cooperative
   deadlines, the supervisor retry ladder, validation diagnostics,
   checkpoint round-trips — and the end-to-end guarantees they buy a
   campaign: chaos never crashes it, and a killed-then-resumed run is
   bit-identical to an uninterrupted one. *)

open Hft_robust
open Hft_cdfg
open Hft_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let with_obs f =
  Hft_obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Hft_obs.enabled := false;
      Hft_obs.reset ())
    (fun () -> Hft_obs.with_enabled true f)

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                      *)
(* ------------------------------------------------------------------ *)

(* Which of [n] checks trip, as a sorted index list. *)
let trip_profile cfg n =
  Chaos.with_config cfg @@ fun () ->
  List.filter_map
    (fun i ->
      match Chaos.check Chaos.Podem with
      | () -> None
      | exception Chaos.Injection _ -> Some i)
    (List.init n (fun i -> i))

let test_chaos_deterministic () =
  let cfg =
    { Chaos.seed = 7; prob = 0.3; sites = [ Chaos.Podem ]; arm_after = 3 }
  in
  let a = trip_profile cfg 50 and b = trip_profile cfg 50 in
  check "same seed, same trips" true (a = b);
  check "some checks trip" true (a <> []);
  check "arm_after shields the first checks" true
    (List.for_all (fun i -> i >= 3) a);
  let c = trip_profile { cfg with seed = 8 } 50 in
  check "different seed, different trips" true (a <> c)

let test_chaos_sites_and_restore () =
  check "disabled outside" false (Chaos.enabled ());
  let cfg =
    { Chaos.seed = 1; prob = 1.0; sites = [ Chaos.Fsim ]; arm_after = 0 }
  in
  Chaos.with_config cfg (fun () ->
      check "enabled inside" true (Chaos.enabled ());
      (* Unarmed site never trips even at prob 1. *)
      Chaos.check Chaos.Podem;
      check "armed site trips" true
        (match Chaos.check Chaos.Fsim with
         | () -> false
         | exception Chaos.Injection { site; seq } ->
           site = "fsim" && seq = 1));
  check "restored after" false (Chaos.enabled ());
  (* Restore holds when the body raises, too. *)
  (try Chaos.with_config cfg (fun () -> raise Exit) with Exit -> ());
  check "restored after raise" false (Chaos.enabled ())

(* ------------------------------------------------------------------ *)
(* Deadlines                                                          *)
(* ------------------------------------------------------------------ *)

let test_deadline_steps () =
  let d = Deadline.make ~steps:5 () in
  for _ = 1 to 5 do
    Deadline.tick d
  done;
  check "expires one past the limit" true
    (match Deadline.tick d with
     | () -> false
     | exception Deadline.Expired (Deadline.Steps { steps; limit }) ->
       steps = 6 && limit = 5
     | exception _ -> false);
  (* No bounds: never expires. *)
  let free = Deadline.make () in
  for _ = 1 to 10_000 do
    Deadline.tick free
  done;
  (* checker is just tick in hook shape. *)
  let d2 = Deadline.make ~steps:1 () in
  let hook = Deadline.checker d2 in
  hook ();
  check "checker raises like tick" true
    (match hook () with
     | () -> false
     | exception Deadline.Expired _ -> true)

(* ------------------------------------------------------------------ *)
(* Supervisor: protect + ladder                                       *)
(* ------------------------------------------------------------------ *)

let test_protect_classifies () =
  check "ok passes through" true
    (Supervisor.protect ~site:Chaos.Podem (fun () -> 42) = Ok 42);
  check "wall expiry -> Timeout" true
    (match
       Supervisor.protect ~site:Chaos.Podem (fun () ->
           raise (Deadline.Expired (Deadline.Wall { elapsed = 2.0; limit = 1.0 })))
     with
     | Error (Failure.Timeout { site; elapsed; limit }) ->
       site = "podem" && elapsed = 2.0 && limit = 1.0
     | _ -> false);
  check "step expiry -> Budget_exhausted" true
    (match
       Supervisor.protect ~site:Chaos.Fsim (fun () ->
           raise (Deadline.Expired (Deadline.Steps { steps = 9; limit = 8 })))
     with
     | Error (Failure.Budget_exhausted { site; steps; limit }) ->
       site = "fsim" && steps = 9 && limit = 8
     | _ -> false);
  check "other exception -> Engine_exception" true
    (match
       Supervisor.protect ~site:Chaos.Collapse (fun () -> failwith "boom")
     with
     | Error (Failure.Engine_exception msg) ->
       (* rendered, never re-raised *)
       String.length msg > 0
     | _ -> false);
  check "injection -> Injected" true
    (Chaos.with_config
       { Chaos.seed = 3; prob = 1.0; sites = [ Chaos.Podem ]; arm_after = 0 }
       (fun () ->
         match Supervisor.protect ~site:Chaos.Podem (fun () -> 0) with
         | Error (Failure.Injected { site = "podem"; seq = 1 }) -> true
         | _ -> false))

let test_ladder_budgets () =
  with_obs @@ fun () ->
  let budgets = ref [] in
  let r =
    Supervisor.ladder Supervisor.default ~site:Chaos.Podem ~budget:10
      (fun ~budget ~check:_ ->
        budgets := budget :: !budgets;
        if budget < 40 then failwith "not yet" else budget)
  in
  check "succeeds on the final rung" true (r = Ok 40);
  check "budgets double per rung" true (List.rev !budgets = [ 10; 20; 40 ]);
  check_int "two retries journalled" 2
    (Hft_obs.Registry.count "hft.robust.retries");
  check_int "final_budget matches the ladder" 40
    (Supervisor.final_budget Supervisor.default ~budget:10);
  (* Exhaustion returns the last failure. *)
  let attempts = ref 0 in
  let r2 =
    Supervisor.ladder Supervisor.default ~site:Chaos.Podem ~budget:1
      (fun ~budget:_ ~check:_ ->
        incr attempts;
        failwith "always")
  in
  check_int "1 + retries attempts" 3 !attempts;
  check "exhausted ladder reports the failure" true
    (match r2 with Error (Failure.Engine_exception _) -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

let test_validation_diag () =
  (match Validation.fail ~site:"netlist.add" ~hint:"wire it" "bad arity" with
   | _ -> Alcotest.fail "fail must raise"
   | exception Validation.Invalid d ->
     check_str "site" "netlist.add" d.Validation.site;
     check_str "message" "bad arity" d.Validation.message;
     check "hint" true (d.Validation.hint = Some "wire it");
     check_str "to_string"
       "netlist.add: bad arity (hint: wire it)"
       (Validation.to_string d));
  check "netlist checks raise typed diagnostics" true
    (let nl = Hft_gate.Netlist.create ~name:"t" () in
     match Hft_gate.Netlist.add nl Hft_gate.Netlist.And [||] with
     | _ -> false
     | exception Validation.Invalid { site = "netlist.add"; _ } -> true)

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                        *)
(* ------------------------------------------------------------------ *)

let tmp_ckpt () = Filename.temp_file "hft_ckpt" ".jsonl"

let mk_test ?(detects = [ (3, None, true); (4, Some 1, false) ]) () =
  {
    Checkpoint.ck_frames = 2;
    ck_vectors = [| [| true; false; true |]; [| false; false; true |] |];
    ck_scan = [| true; true |];
    ck_detects = detects;
  }

let test_checkpoint_roundtrip () =
  let path = tmp_ckpt () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let meta = [ ("bench", Hft_util.Json.String "x"); ("n", Hft_util.Json.Int 4) ] in
  let w = Checkpoint.create ~path ~meta in
  Checkpoint.append_test w (mk_test ());
  Checkpoint.append_class w ~rep:"n3/SA1"
    (Hft_obs.Ledger.Podem_detected { test = 0; backtracks = 5; frames = 2 });
  Checkpoint.append_class w ~rep:"n9/SA0"
    (Hft_obs.Ledger.Aborted
       { budget = 80; frames = 2; reason = Some "timeout(podem: 1.10s > 1.00s)" });
  Checkpoint.append_class w ~rep:"n2/SA0"
    (Hft_obs.Ledger.Proved_untestable { frames = 2 });
  Checkpoint.close w;
  match Checkpoint.load ~path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok ck ->
    check "meta survives" true (ck.Checkpoint.meta = meta);
    check_int "one test" 1 (List.length ck.Checkpoint.tests);
    check_int "three classes" 3 (List.length ck.Checkpoint.classes);
    check "test round-trips" true (List.hd ck.Checkpoint.tests = mk_test ());
    check "resolutions round-trip" true
      (List.map (fun c -> c.Checkpoint.ck_resolution) ck.Checkpoint.classes
       = [ Hft_obs.Ledger.Podem_detected { test = 0; backtracks = 5; frames = 2 };
           Hft_obs.Ledger.Aborted
             { budget = 80; frames = 2;
               reason = Some "timeout(podem: 1.10s > 1.00s)" };
           Hft_obs.Ledger.Proved_untestable { frames = 2 } ])

let test_checkpoint_repairs_tail () =
  (* An uncommitted final test transaction — the test line landed but
     the committing podem_detected class line did not — rolls back,
     together with any drop lines referencing it. *)
  let path = tmp_ckpt () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let w = Checkpoint.create ~path ~meta:[] in
  Checkpoint.append_test w (mk_test ());
  Checkpoint.append_class w ~rep:"a"
    (Hft_obs.Ledger.Podem_detected { test = 0; backtracks = 1; frames = 1 });
  Checkpoint.append_test w (mk_test ~detects:[ (7, None, false) ] ());
  Checkpoint.append_class w ~rep:"b" (Hft_obs.Ledger.Drop_detected { test = 1 });
  Checkpoint.close w;
  (match Checkpoint.load ~path with
   | Error msg -> Alcotest.failf "load failed: %s" msg
   | Ok ck ->
     check_int "uncommitted test dropped" 1 (List.length ck.Checkpoint.tests);
     check "its drop line dropped too" true
       (List.for_all (fun c -> c.Checkpoint.ck_rep <> "b")
          ck.Checkpoint.classes));
  (* A torn (half-written) final line is likewise tolerated. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"kind\":\"test\",\"frames\":2,\"vec";
  close_out oc;
  (match Checkpoint.load ~path with
   | Error msg -> Alcotest.failf "torn tail not tolerated: %s" msg
   | Ok ck -> check_int "torn line ignored" 1 (List.length ck.Checkpoint.tests));
  (* Mid-file damage is corruption, not an interrupted run. *)
  let lines = String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all) in
  let oc = open_out path in
  List.iteri
    (fun i l ->
      if l <> "" then begin
        output_string oc (if i = 1 then "garbage" else l);
        output_char oc '\n'
      end)
    lines;
  close_out oc;
  check "mid-file garbage is an error" true
    (match Checkpoint.load ~path with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Campaign-level guarantees                                          *)
(* ------------------------------------------------------------------ *)

let fig1_result () =
  let g = Paper_fig1.graph () in
  Flow.synthesize ~width:4 Flow.Partial_scan g

let run_campaign ?supervisor ?checkpoint ?resume ?jobs r =
  Flow.test_campaign ~backtrack_limit:20 ~max_frames:2 ~sample:4 ~seed:7
    ~n_patterns:32 ?supervisor ?checkpoint ?resume ?jobs r

(* Every outcome a campaign produces: per-fault verdicts, stored
   patterns, the final detected set, the forensics waterfall.  Effort
   counters (decisions/backtracks/implications) are deliberately
   excluded — a resumed campaign does not redo the work its checkpoint
   already recorded, so only outcomes can be compared across runs. *)
let fingerprint (c : Flow.campaign) =
  let s = c.Flow.c_atpg in
  ( ( s.Hft_gate.Seq_atpg.detected, s.untestable, s.aborted, s.total ),
    c.Flow.c_patterns_stored,
    List.sort compare c.Flow.c_fsim.Hft_gate.Fsim.detected,
    List.sort compare (Hft_obs.Ledger.waterfall ()) )

let test_supervisor_bit_identical () =
  (* Supervision on, chaos off: the happy path must not perturb the
     engines — same stats, patterns, coverage, waterfall. *)
  let r = fig1_result () in
  with_obs @@ fun () ->
  let c_on = run_campaign r in
  let on = (c_on.Flow.c_atpg, fingerprint c_on) in
  Hft_obs.reset ();
  let c_off = run_campaign ~supervisor:None r in
  let off = (c_off.Flow.c_atpg, fingerprint c_off) in
  check "supervised run is bit-identical (effort counters included)" true
    (on = off)

let test_chaos_never_crashes () =
  (* Engine-site injections armed hot: the campaign must terminate with
     a conserved waterfall, never escape with an exception. *)
  let r = fig1_result () in
  List.iter
    (fun seed ->
      with_obs @@ fun () ->
      let c =
        Chaos.with_config
          { Chaos.seed;
            prob = 0.25;
            sites = [ Chaos.Podem; Chaos.Fsim; Chaos.Collapse ];
            arm_after = 0 }
          (fun () -> run_campaign r)
      in
      let wf = Hft_obs.Ledger.waterfall () in
      check_int
        (Printf.sprintf "seed %d: waterfall classes conserve" seed)
        (Hft_obs.Ledger.n_classes ())
        (List.fold_left (fun acc (_, (cl, _)) -> acc + cl) 0 wf);
      check_int
        (Printf.sprintf "seed %d: waterfall faults conserve" seed)
        (List.length c.Flow.c_faults)
        (List.fold_left (fun acc (_, (_, fa)) -> acc + fa) 0 wf))
    [ 11; 23; 37 ]

let test_checkpoint_resume_bit_identical () =
  (* Kill the campaign at a serialisation boundary via chaos, resume
     chaos-off, and compare against an uninterrupted reference run. *)
  let r = fig1_result () in
  let reference =
    with_obs @@ fun () ->
    let path = tmp_ckpt () in
    Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
    fingerprint (run_campaign ~checkpoint:path r)
  in
  let path = tmp_ckpt () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let killed =
    with_obs @@ fun () ->
    match
      Chaos.with_config
        { Chaos.seed = 5; prob = 1.0; sites = [ Chaos.Serialize ];
          arm_after = 4 }
        (fun () -> run_campaign ~checkpoint:path r)
    with
    | _ -> false
    | exception Chaos.Injection _ -> true
  in
  check "chaos killed the campaign mid-run" true killed;
  let resumed, resumed_counts =
    with_obs @@ fun () ->
    let c = run_campaign ~checkpoint:path ~resume:true r in
    (fingerprint c, (c.Flow.c_resumed_classes, c.Flow.c_resumed_tests))
  in
  check "resumed run restored prior work" true
    (fst resumed_counts > 0 || snd resumed_counts > 0);
  check "resumed run is bit-identical to the uninterrupted one" true
    (resumed = reference)

let test_checkpoint_resume_parallel_torn () =
  (* The same kill-and-resume contract under the domain pool: chaos
     kills a -j4 campaign at a serialisation boundary, the process dies
     mid-write (simulated by appending a half line to the checkpoint),
     and a -j4 resume must repair the torn tail and land bit-identical
     to an uninterrupted -j4 run. *)
  let r = fig1_result () in
  let jobs = 4 in
  let reference =
    with_obs @@ fun () ->
    let path = tmp_ckpt () in
    Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
    fingerprint (run_campaign ~checkpoint:path ~jobs r)
  in
  let path = tmp_ckpt () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let killed =
    with_obs @@ fun () ->
    match
      Chaos.with_config
        { Chaos.seed = 5; prob = 1.0; sites = [ Chaos.Serialize ];
          arm_after = 4 }
        (fun () -> run_campaign ~checkpoint:path ~jobs r)
    with
    | _ -> false
    | exception Chaos.Injection _ -> true
  in
  check "chaos killed the -j4 campaign mid-run" true killed;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"kind\":\"test\",\"frames\":2,\"vec";
  close_out oc;
  let resumed =
    with_obs @@ fun () ->
    fingerprint (run_campaign ~checkpoint:path ~resume:true ~jobs r)
  in
  check "-j4 torn-tail resume is bit-identical to uninterrupted -j4" true
    (resumed = reference);
  (* And the jobs count is not part of the checkpoint identity: the
     now-complete file resumes sequentially, restoring every class to
     the same outcomes. *)
  check "completed checkpoint resumes at -j1 to the same outcomes" true
    ((with_obs @@ fun () ->
      fingerprint (run_campaign ~checkpoint:path ~resume:true r))
     = reference)

let test_checkpoint_meta_mismatch () =
  let r = fig1_result () in
  let path = tmp_ckpt () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  with_obs @@ fun () ->
  ignore (run_campaign ~checkpoint:path r);
  Hft_obs.reset ();
  check "fingerprint mismatch rejects the resume" true
    (match
       Flow.test_campaign ~backtrack_limit:21 ~max_frames:2 ~sample:4 ~seed:7
         ~n_patterns:32 ~checkpoint:path ~resume:true r
     with
     | _ -> false
     | exception Validation.Invalid _ -> true)

let () =
  Alcotest.run "hft_robust"
    [
      ( "chaos",
        [
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "sites + restore" `Quick
            test_chaos_sites_and_restore;
        ] );
      ( "deadline",
        [ Alcotest.test_case "steps" `Quick test_deadline_steps ] );
      ( "supervisor",
        [
          Alcotest.test_case "protect classifies" `Quick test_protect_classifies;
          Alcotest.test_case "ladder budgets" `Quick test_ladder_budgets;
        ] );
      ( "validation",
        [ Alcotest.test_case "diagnostics" `Quick test_validation_diag ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "tail repair" `Quick test_checkpoint_repairs_tail;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "supervised = bare (chaos off)" `Quick
            test_supervisor_bit_identical;
          Alcotest.test_case "chaos never crashes" `Quick
            test_chaos_never_crashes;
          Alcotest.test_case "kill + resume bit-identical" `Quick
            test_checkpoint_resume_bit_identical;
          Alcotest.test_case "-j4 kill + torn tail + resume" `Quick
            test_checkpoint_resume_parallel_torn;
          Alcotest.test_case "resume fingerprint mismatch" `Quick
            test_checkpoint_meta_mismatch;
        ] );
    ]
