open Hft_cdfg
open Hft_gate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Netlist basics                                                     *)
(* ------------------------------------------------------------------ *)

let mini_netlist () =
  (* y = (a & b) ^ c, with a DFF delaying c. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Pi [||] in
  let c = Netlist.add nl ~name:"c" Netlist.Pi [||] in
  let d = Netlist.add nl ~name:"d" Netlist.Dff [| c |] in
  let g1 = Netlist.add nl Netlist.And [| a; b |] in
  let g2 = Netlist.add nl Netlist.Xor [| g1; d |] in
  let y = Netlist.add nl ~name:"y" Netlist.Po [| g2 |] in
  (nl, a, b, c, d, g2, y)

let test_netlist_structure () =
  let nl, _, _, _, _, _, _ = mini_netlist () in
  check_int "nodes" 7 (Netlist.n_nodes nl);
  check_int "pis" 3 (List.length (Netlist.pis nl));
  check_int "pos" 1 (List.length (Netlist.pos nl));
  check_int "dffs" 1 (List.length (Netlist.dffs nl));
  Netlist.validate nl

let test_netlist_arity_checked () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  check "arity mismatch rejected" true
    (match Netlist.add nl Netlist.And [| a |] with
     | _ -> false
     | exception Hft_robust.Validation.Invalid { site = "netlist.add"; _ } ->
       true)

let test_comb_cycle_detected () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let g1 = Netlist.add nl Netlist.And [| a; a |] in
  (* Close a combinational loop by patching the fanin in place. *)
  Netlist.set_fanin nl g1 1 g1;
  check "cycle detected" true
    (match Netlist.comb_order nl with
     | _ -> false
     | exception Hft_robust.Validation.Invalid { site = "netlist.comb_order"; _ }
       -> true)

let test_sequential_sim () =
  let nl, _, _, _, _, _, _ = mini_netlist () in
  (* Cycle 0: a=1,b=1,c=1 -> dff holds 0, y = 1^0 = 1; clock loads c=1.
     Cycle 1: a=1,b=0,c=0 -> y = 0^1 = 1. *)
  let out =
    Sim.run_cycles nl ~stimuli:[| [| true; true; true |]; [| true; false; false |] |]
  in
  check "cycle0" true out.(0).(0);
  check "cycle1" true out.(1).(0)

(* ------------------------------------------------------------------ *)
(* Arithmetic expansion vs reference semantics                        *)
(* ------------------------------------------------------------------ *)

let kinds_under_test =
  [ Op.Add; Op.Sub; Op.Mul; Op.Lt; Op.Gt; Op.Eq; Op.And; Op.Or; Op.Xor ]

let test_blocks_match_reference () =
  let width = 6 in
  let rng = Hft_util.Rng.create 99 in
  List.iter
    (fun k ->
      let blk = Expand.comb_block ~width [ k ] in
      for _ = 1 to 100 do
        let a = Hft_util.Rng.int rng (1 lsl width) in
        let b = Hft_util.Rng.int rng (1 lsl width) in
        let got = Expand.eval_block blk ~kind_index:0 ~a ~b in
        let want = Op.eval ~width k [ a; b ] in
        if got <> want then
          Alcotest.failf "%s(%d,%d): gates=%d reference=%d" (Op.to_string k) a
            b got want
      done)
    kinds_under_test

let test_multi_kind_block () =
  let width = 5 in
  let blk = Expand.comb_block ~width [ Op.Add; Op.Sub ] in
  check_int "two select lines" 2 (List.length blk.Expand.b_sel);
  let rng = Hft_util.Rng.create 3 in
  for _ = 1 to 50 do
    let a = Hft_util.Rng.int rng 32 and b = Hft_util.Rng.int rng 32 in
    check_int "add path" (Op.eval ~width Op.Add [ a; b ])
      (Expand.eval_block blk ~kind_index:0 ~a ~b);
    check_int "sub path" (Op.eval ~width Op.Sub [ a; b ])
      (Expand.eval_block blk ~kind_index:1 ~a ~b)
  done

let prop_adder_width_sweep =
  QCheck.Test.make ~name:"adder matches reference across widths" ~count:60
    QCheck.(pair (int_range 2 10) (int_bound 100000))
    (fun (width, seed) ->
      let rng = Hft_util.Rng.create seed in
      let blk = Expand.comb_block ~width [ Op.Add ] in
      let a = Hft_util.Rng.int rng (1 lsl width) in
      let b = Hft_util.Rng.int rng (1 lsl width) in
      Expand.eval_block blk ~kind_index:0 ~a ~b = Op.eval ~width Op.Add [ a; b ])

(* ------------------------------------------------------------------ *)
(* Datapath expansion vs RTL simulation                               *)
(* ------------------------------------------------------------------ *)

let test_expanded_datapath_matches_rtl () =
  let width = 6 in
  let rng = Hft_util.Rng.create 31 in
  List.iter
    (fun bench ->
      let g = Bench_suite.by_name bench in
      let d =
        Hft_hls.Datapath_gen.conventional ~width
          ~resources:
            [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1);
              (Op.Logic_unit, 1) ]
          g
      in
      let ex = Expand.of_datapath d in
      for _ = 1 to 5 do
        let inputs =
          List.map
            (fun v -> (v.Graph.v_name, Hft_util.Rng.int rng (1 lsl width)))
            (Graph.inputs g)
        in
        let rtl_outs, _ = Hft_rtl.Datapath.simulate d ~inputs () in
        let gate_outs = Expand.run_iteration d ex ~inputs () in
        List.iter
          (fun (name, v) ->
            let got = List.assoc name gate_outs in
            if got <> v then
              Alcotest.failf "%s: output %s gate=%d rtl=%d" bench name got v)
          rtl_outs
      done)
    [ "tseng"; "diffeq"; "fir8" ]

let test_expanded_with_state () =
  let width = 5 in
  let g = Bench_suite.iir4 () in
  let d =
    Hft_hls.Datapath_gen.conventional ~width
      ~resources:[ (Op.Multiplier, 2); (Op.Alu, 2) ]
      g
  in
  let ex = Expand.of_datapath d in
  let rng = Hft_util.Rng.create 8 in
  for _ = 1 to 3 do
    let inputs =
      List.map
        (fun v -> (v.Graph.v_name, Hft_util.Rng.int rng (1 lsl width)))
        (Graph.inputs g)
    in
    (* Random initial state on every register, keyed by register name. *)
    let state =
      Array.to_list d.Hft_rtl.Datapath.regs
      |> List.map (fun r ->
             (r.Hft_rtl.Datapath.r_name, Hft_util.Rng.int rng (1 lsl width)))
    in
    let rtl_outs, _ = Hft_rtl.Datapath.simulate d ~inputs ~state () in
    let gate_outs = Expand.run_iteration d ex ~inputs ~state () in
    List.iter
      (fun (name, v) ->
        if List.assoc name gate_outs <> v then
          Alcotest.failf "iir4 with state: output %s gate=%d rtl=%d" name
            (List.assoc name gate_outs) v)
      rtl_outs
  done

(* ------------------------------------------------------------------ *)
(* Fault universe & fault simulation                                  *)
(* ------------------------------------------------------------------ *)

let test_fault_universe () =
  let nl, _, _, _, _, _, _ = mini_netlist () in
  let u = Fault.universe nl in
  check "has stem faults" true
    (List.exists (fun f -> f.Fault.pin = None) u);
  let c = Fault.collapsed nl in
  check "collapse shrinks or keeps" true (List.length c <= List.length u)

let test_fsim_detects_obvious () =
  (* y = a & b; fault y/SA0 detected by a=b=1. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let b = Netlist.add nl Netlist.Pi [||] in
  let g = Netlist.add nl Netlist.And [| a; b |] in
  let _y = Netlist.add nl Netlist.Po [| g |] in
  let fault = { Fault.node = g; pin = None; stuck = false } in
  let r = Fsim.comb nl ~patterns:[| [| true; true |] |] [ fault ] in
  check_int "detected" 1 (List.length r.Fsim.detected);
  let r2 = Fsim.comb nl ~patterns:[| [| true; false |] |] [ fault ] in
  check_int "not detected by 10" 0 (List.length r2.Fsim.detected)

let test_fsim_random_coverage_high_on_adder () =
  let blk = Expand.comb_block ~width:4 [ Op.Add ] in
  let nl = blk.Expand.b_netlist in
  let faults = Fault.collapsed nl in
  let rng = Hft_util.Rng.create 17 in
  let r = Fsim.comb_random nl ~rng ~n_patterns:256 faults in
  check "adder random coverage > 95%" true (Fsim.coverage r > 0.95)

let test_coverage_curve_monotone () =
  let blk = Expand.comb_block ~width:4 [ Op.Mul ] in
  let nl = blk.Expand.b_netlist in
  let faults = Fault.collapsed nl in
  let rng = Hft_util.Rng.create 5 in
  let n_pi = List.length (Netlist.pis nl) in
  let curve =
    Fsim.coverage_curve nl ~checkpoints:[ 8; 32; 128 ]
      ~next_pattern:(fun () -> Array.init n_pi (fun _ -> Hft_util.Rng.bool rng))
      faults
  in
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as tl) -> a <= b +. 1e-9 && mono tl
    | _ -> true
  in
  check "monotone" true (mono curve);
  check "final decent" true (snd (List.nth curve 2) > 0.8)

(* ------------------------------------------------------------------ *)
(* PODEM                                                              *)
(* ------------------------------------------------------------------ *)

let test_podem_simple () =
  (* y = a & b, fault g/SA0: test must set a=b=1. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let b = Netlist.add nl Netlist.Pi [||] in
  let g = Netlist.add nl Netlist.And [| a; b |] in
  let _y = Netlist.add nl Netlist.Po [| g |] in
  let fault = { Fault.node = g; pin = None; stuck = false } in
  (match Podem.generate_comb nl ~fault with
   | Podem.Test assign, _ ->
     check "a=1" true (List.assoc a assign);
     check "b=1" true (List.assoc b assign)
   | Podem.Untestable, _ -> Alcotest.fail "unexpected untestable"
   | Podem.Aborted, _ -> Alcotest.fail "unexpected abort")

let test_podem_untestable_redundant () =
  (* y = a | (a & b): the (a&b)/SA0 fault is undetectable (redundant). *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let b = Netlist.add nl Netlist.Pi [||] in
  let g1 = Netlist.add nl Netlist.And [| a; b |] in
  let g2 = Netlist.add nl Netlist.Or [| a; g1 |] in
  let _y = Netlist.add nl Netlist.Po [| g2 |] in
  (match Podem.generate_comb nl ~fault:{ Fault.node = g1; pin = None; stuck = false } with
   | Podem.Untestable, _ -> ()
   | Podem.Test _, _ -> Alcotest.fail "redundant fault should be untestable"
   | Podem.Aborted, _ -> Alcotest.fail "should terminate")

let test_podem_tests_verified_by_fsim () =
  (* Every PODEM test on the multiplier block must be confirmed by
     fault simulation. *)
  let blk = Expand.comb_block ~width:3 [ Op.Mul ] in
  let nl = blk.Expand.b_netlist in
  let faults = Fault.collapsed nl in
  let pis = Netlist.pis nl in
  let checked = ref 0 in
  List.iteri
    (fun i fault ->
      if i mod 4 = 0 then begin
        match Podem.generate_comb nl ~fault with
        | Podem.Test assign, _ ->
          incr checked;
          check "podem test detects its fault" true
            (Podem.check nl ~faults:[ fault ] ~assignment:assign
               ~observe:(Netlist.pos nl));
          (* Cross-validate with the pattern-parallel fault simulator. *)
          let pattern =
            Array.of_list
              (List.map
                 (fun pi ->
                   match List.assoc_opt pi assign with
                   | Some b -> b
                   | None -> false)
                 pis)
          in
          let r = Fsim.comb nl ~patterns:[| pattern |] [ fault ] in
          check "fsim agrees" true (List.length r.Fsim.detected = 1)
        | Podem.Untestable, _ | Podem.Aborted, _ -> ()
      end)
    faults;
  check "some faults exercised" true (!checked > 10)

let test_podem_full_coverage_small_adder () =
  let blk = Expand.comb_block ~width:3 [ Op.Add ] in
  let nl = blk.Expand.b_netlist in
  let faults = Fault.collapsed nl in
  let aborted = ref 0 and detected = ref 0 and untestable = ref 0 in
  List.iter
    (fun fault ->
      match Podem.generate_comb ~backtrack_limit:1000 nl ~fault with
      | Podem.Test _, _ -> incr detected
      | Podem.Untestable, _ -> incr untestable
      | Podem.Aborted, _ -> incr aborted)
    faults;
  check_int "no aborts on 3-bit adder" 0 !aborted;
  (* A ripple-carry adder is fully testable. *)
  check "everything detected" true
    (float_of_int !detected /. float_of_int (List.length faults) > 0.99)

(* ------------------------------------------------------------------ *)
(* Sequential ATPG                                                    *)
(* ------------------------------------------------------------------ *)

(* A 2-FF shift register: PI -> FF1 -> FF2 -> PO.  Depth 2, no loops:
   sequential ATPG needs up to 3 frames. *)
let shift_register () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let inv = Netlist.add nl Netlist.Not [| a |] in
  let f1 = Netlist.add nl ~name:"f1" Netlist.Dff [| inv |] in
  let buf = Netlist.add nl Netlist.Buf [| f1 |] in
  let f2 = Netlist.add nl ~name:"f2" Netlist.Dff [| buf |] in
  let _y = Netlist.add nl ~name:"y" Netlist.Po [| f2 |] in
  nl

(* A counter-like looped FF: FF xor PI feeds FF back. *)
let looped_ff () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let f = Netlist.add nl ~name:"f" Netlist.Dff [| a |] in
  let x = Netlist.add nl Netlist.Xor [| a; f |] in
  Netlist.set_fanin nl f 0 x;
  let _y = Netlist.add nl ~name:"y" Netlist.Po [| x |] in
  nl

let test_unroll_structure () =
  let nl = shift_register () in
  let u, assignable, observe, _ = Seq_atpg.unroll nl ~frames:3 ~scanned:[] in
  Netlist.validate u;
  (* 3 copies of the PI are assignable; FF initial states are not. *)
  check_int "three assignable PIs" 3 (List.length assignable);
  check_int "three PO copies observable" 3 (List.length observe)

let test_seq_atpg_shift_register () =
  let nl = shift_register () in
  let faults =
    [ { Fault.node = List.nth (Netlist.dffs nl) 0; pin = None; stuck = false };
      { Fault.node = List.nth (Netlist.dffs nl) 1; pin = None; stuck = true } ]
  in
  let stats = Seq_atpg.run ~max_frames:4 nl ~faults ~scanned:[] in
  check_int "both detected" 2 stats.Seq_atpg.detected

let test_seq_atpg_scan_helps_loop () =
  let nl = looped_ff () in
  let f = List.hd (Netlist.dffs nl) in
  let faults = [ { Fault.node = f; pin = None; stuck = false } ] in
  let no_scan = Seq_atpg.run ~max_frames:3 nl ~faults ~scanned:[] in
  let with_scan = Seq_atpg.run ~max_frames:3 nl ~faults ~scanned:[ f ] in
  check "scan detects" true (with_scan.Seq_atpg.detected = 1);
  (* With scan, effort is no worse. *)
  check "scan effort <= no-scan effort" true
    (with_scan.Seq_atpg.implications <= no_scan.Seq_atpg.implications
     || with_scan.Seq_atpg.detected > no_scan.Seq_atpg.detected)

(* ------------------------------------------------------------------ *)
(* Gate-level S-graph                                                 *)
(* ------------------------------------------------------------------ *)

let test_gsgraph_shift_register () =
  let nl = shift_register () in
  let s = Gsgraph.of_netlist nl in
  check_int "no loops" 0 (Gsgraph.n_loops s);
  check_int "depth 1 edge" 1 (Gsgraph.sequential_depth s);
  check_int "no scan needed" 0 (List.length (Gsgraph.scan_selection s))

let test_gsgraph_loop () =
  let nl = looped_ff () in
  let s = Gsgraph.of_netlist nl in
  check "self loop found" true (Gsgraph.n_loops s >= 1);
  (* Self-loops tolerated by default. *)
  check_int "tolerated" 0 (List.length (Gsgraph.scan_selection s));
  check_int "strict selection cuts it" 1
    (List.length (Gsgraph.scan_selection ~ignore_self_loops:false s))

let test_gsgraph_expanded_diffeq_has_loops () =
  let g = Bench_suite.diffeq () in
  let d =
    Hft_hls.Datapath_gen.conventional ~width:4
      ~resources:
        [ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1) ]
      g
  in
  let ex = Expand.of_datapath d in
  let s = Gsgraph.of_netlist ex.Expand.netlist in
  check "diffeq gates have FF loops" true (Gsgraph.n_loops ~max_len:6 s > 0)

(* ------------------------------------------------------------------ *)
(* Controller composition                                             *)
(* ------------------------------------------------------------------ *)

(* Run the composite (FSM + datapath) through reset + one iteration and
   read the output registers. *)
let run_composite (d : Hft_rtl.Datapath.t) (t : Ctrl_expand.t) ~inputs =
  let nl = t.Ctrl_expand.netlist in
  let st = Sim.pcreate nl ~n_patterns:1 in
  let set node b =
    let v = Hft_util.Bitvec.create 1 in
    Hft_util.Bitvec.set v 0 b;
    Sim.pset_pi st node v
  in
  (* Data inputs constant. *)
  List.iter
    (fun (name, value) ->
      match List.assoc_opt name t.Ctrl_expand.expansion.Expand.data_pis with
      | None -> ()
      | Some bits ->
        Array.iteri (fun i node -> set node (value lsr i land 1 = 1)) bits)
    inputs;
  set t.Ctrl_expand.test_mode false;
  List.iter (fun p -> set p false) t.Ctrl_expand.test_sel;
  (* Reset pulse, then walk the states. *)
  set t.Ctrl_expand.reset true;
  Sim.peval nl st;
  Sim.pclock nl st;
  set t.Ctrl_expand.reset false;
  for _ = 0 to d.Hft_rtl.Datapath.n_steps do
    Sim.peval nl st;
    Sim.pclock nl st
  done;
  Sim.peval nl st;
  List.map
    (fun (name, po_bits) ->
      let v =
        Array.to_list po_bits
        |> List.mapi (fun i po ->
               if Hft_util.Bitvec.get (Sim.pvalue st po) 0 then 1 lsl i else 0)
        |> List.fold_left ( + ) 0
      in
      (name, v))
    t.Ctrl_expand.expansion.Expand.outputs

let test_composite_matches_rtl () =
  let width = 5 in
  let rng = Hft_util.Rng.create 3 in
  List.iter
    (fun bench ->
      let g = Bench_suite.by_name bench in
      let d =
        Hft_hls.Datapath_gen.conventional ~width
          ~resources:
            [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1);
              (Op.Logic_unit, 1) ]
          g
      in
      let c = Hft_rtl.Controller.of_datapath d in
      let t = Ctrl_expand.compose d c in
      for _ = 1 to 4 do
        let inputs =
          List.map
            (fun v -> (v.Graph.v_name, Hft_util.Rng.int rng (1 lsl width)))
            (Graph.inputs g)
        in
        let rtl_outs, _ = Hft_rtl.Datapath.simulate d ~inputs () in
        let got = run_composite d t ~inputs in
        List.iter
          (fun (name, v) ->
            if List.assoc name got <> v then
              Alcotest.failf "%s composite: %s fsm=%d rtl=%d" bench name
                (List.assoc name got) v)
          rtl_outs
      done)
    [ "tseng"; "diffeq" ]

let test_composite_atpg_test_vectors_help () =
  let g = Bench_suite.tseng () in
  let d =
    Hft_hls.Datapath_gen.conventional ~width:4
      ~resources:
        [ (Op.Multiplier, 1); (Op.Alu, 1); (Op.Comparator, 1);
          (Op.Logic_unit, 1) ]
      g
  in
  let c0 = Hft_rtl.Controller.of_datapath d in
  let plain = Ctrl_expand.compose d c0 in
  let rng = Hft_util.Rng.create 15 in
  let faults =
    Fault.collapsed plain.Ctrl_expand.netlist
    |> List.filter (fun f ->
           (* Only data-path faults (nodes existing in the plain
              expansion too would differ; just sample broadly). *)
           ignore f;
           Hft_util.Rng.int rng 30 = 0)
  in
  let s_plain =
    Ctrl_expand.atpg ~backtrack_limit:30 ~max_frames:3 plain ~faults
  in
  (* Same faults on the hardened controller (fault node ids are
     identical as long as compose is deterministic and the controller
     only differs in test vectors, which are appended last).  Rebuild
     with harden's controller. *)
  let rep =
    let c = Hft_rtl.Controller.of_datapath d in
    Hft_rtl.Controller.add_test_vectors c
      [ List.map (fun s -> (s, 1)) c.Hft_rtl.Controller.signals ]
  in
  let hardened = Ctrl_expand.compose d rep in
  (* Node ids differ between the two compositions (extra test logic),
     so just compare aggregate coverage on each netlist's own sampled
     faults. *)
  let rng2 = Hft_util.Rng.create 15 in
  let faults_h =
    Fault.collapsed hardened.Ctrl_expand.netlist
    |> List.filter (fun _ -> Hft_util.Rng.int rng2 30 = 0)
  in
  let s_hard =
    Ctrl_expand.atpg ~backtrack_limit:30 ~max_frames:3 hardened ~faults:faults_h
  in
  (* Shapes: both runs complete; the hardened composite should not be
     dramatically worse (test logic adds faults but also freedom). *)
  check "plain composite runs" true (s_plain.Seq_atpg.total > 0);
  check "hardened composite runs" true (s_hard.Seq_atpg.total > 0)

(* ------------------------------------------------------------------ *)
(* PODEM vs exhaustive simulation on random circuits                  *)
(* ------------------------------------------------------------------ *)

(* Random combinational netlist: n_pi inputs, n_gates random gates over
   earlier nodes, the last few nodes observed. *)
let random_comb_netlist rng ~n_pi ~n_gates =
  let nl = Netlist.create ~name:"random" () in
  let nodes = ref [] in
  for i = 0 to n_pi - 1 do
    nodes := Netlist.add nl ~name:(Printf.sprintf "i%d" i) Netlist.Pi [||] :: !nodes
  done;
  let kinds =
    [| Netlist.And; Netlist.Or; Netlist.Nand; Netlist.Nor; Netlist.Xor;
       Netlist.Xnor; Netlist.Not; Netlist.Mux2 |]
  in
  let pick () =
    let arr = Array.of_list !nodes in
    arr.(Hft_util.Rng.int rng (Array.length arr))
  in
  let last = ref (List.hd !nodes) in
  for _ = 1 to n_gates do
    let k = kinds.(Hft_util.Rng.int rng (Array.length kinds)) in
    let fanins =
      match k with
      | Netlist.Not -> [| pick () |]
      | Netlist.Mux2 -> [| pick (); pick (); pick () |]
      | _ -> [| pick (); pick () |]
    in
    let id = Netlist.add nl k fanins in
    nodes := id :: !nodes;
    last := id
  done;
  let _ = Netlist.add nl ~name:"y" Netlist.Po [| !last |] in
  nl

let prop_podem_agrees_with_exhaustive =
  QCheck.Test.make ~name:"PODEM verdicts agree with exhaustive simulation"
    ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let n_pi = 3 + Hft_util.Rng.int rng 4 in
      let nl = random_comb_netlist rng ~n_pi ~n_gates:12 in
      let patterns =
        Array.init (1 lsl n_pi) (fun p ->
            Array.init n_pi (fun i -> p lsr i land 1 = 1))
      in
      let faults = Fault.collapsed nl in
      let exhaustive = Fsim.comb nl ~patterns faults in
      List.for_all
        (fun f ->
          let detectable = List.mem f exhaustive.Fsim.detected in
          match Podem.generate_comb ~backtrack_limit:2000 nl ~fault:f with
          | Podem.Test assign, _ ->
            (* The test must really detect, and the fault must be
               detectable. *)
            detectable
            && Podem.check nl ~faults:[ f ] ~assignment:assign
                 ~observe:(Netlist.pos nl)
          | Podem.Untestable, _ -> not detectable
          | Podem.Aborted, _ -> true (* inconclusive is permitted *))
        faults)

let prop_seq_atpg_tests_consistent =
  QCheck.Test.make ~name:"full-scan view never claims less than no-scan"
    ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let nl = random_comb_netlist rng ~n_pi:4 ~n_gates:10 in
      (* Purely combinational: sequential ATPG with 1 frame must agree
         with combinational PODEM. *)
      let faults =
        Fault.collapsed nl |> List.filteri (fun i _ -> i mod 5 = 0)
      in
      let stats = Seq_atpg.run ~max_frames:1 nl ~faults ~scanned:[] in
      let comb_detected =
        List.length
          (List.filter
             (fun f ->
               match Podem.generate_comb ~backtrack_limit:2000 nl ~fault:f with
               | Podem.Test _, _ -> true
               | _ -> false)
             faults)
      in
      stats.Seq_atpg.detected = comb_detected)

(* ------------------------------------------------------------------ *)
(* Fault-dropping pipeline: collapsing, cone fsim, drop strategy      *)
(* ------------------------------------------------------------------ *)

let sorted_faults fs = List.sort compare fs

(* The cone-limited fault simulator must be bit-identical to the naive
   whole-netlist oracle on every pattern set. *)
let prop_fsim_cone_matches_naive =
  QCheck.Test.make ~name:"Fsim.comb Cone bit-identical to Naive" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let n_pi = 3 + Hft_util.Rng.int rng 4 in
      let nl = random_comb_netlist rng ~n_pi ~n_gates:15 in
      let patterns =
        Array.init 24 (fun _ ->
            Array.init n_pi (fun _ -> Hft_util.Rng.bool rng))
      in
      let faults = Fault.universe nl in
      let naive = Fsim.comb ~strategy:Fsim.Naive nl ~patterns faults in
      let cone = Fsim.comb ~strategy:Fsim.Cone nl ~patterns faults in
      sorted_faults naive.Fsim.detected = sorted_faults cone.Fsim.detected)

(* The X-sound drop check must agree between strategies and with the
   dual-simulation oracle PODEM itself uses. *)
let prop_detect_groups_tri_matches_check =
  QCheck.Test.make
    ~name:"detect_groups_tri: Cone = Naive = Podem.check" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let n_pi = 3 + Hft_util.Rng.int rng 3 in
      let nl = random_comb_netlist rng ~n_pi ~n_gates:12 in
      let observe = Netlist.pos nl in
      (* A partial assignment: some PIs stay at X. *)
      let assignment =
        Netlist.pis nl
        |> List.filter (fun _ -> Hft_util.Rng.int rng 3 > 0)
        |> List.map (fun pi -> (pi, Hft_util.Rng.bool rng))
      in
      let groups = List.map (fun f -> [ f ]) (Fault.universe nl) in
      let naive =
        Fsim.detect_groups_tri ~strategy:Fsim.Naive nl ~assignment ~observe
          groups
      in
      let cone =
        Fsim.detect_groups_tri ~strategy:Fsim.Cone nl ~assignment ~observe
          groups
      in
      naive = cone
      && List.for_all2
           (fun g flag ->
             flag = Podem.check nl ~faults:g ~assignment ~observe)
           groups (Array.to_list naive))

let test_fault_collapse_invariants () =
  let rng = Hft_util.Rng.create 77 in
  let nl = random_comb_netlist rng ~n_pi:5 ~n_gates:15 in
  let u = Fault.universe nl in
  let fc = Fault_collapse.compute nl in
  check_int "covers the universe" (List.length u) (Fault_collapse.n_faults fc);
  (* Classes partition the universe: every fault belongs to exactly one
     class, and member lists are disjoint and complete. *)
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  for c = 0 to Fault_collapse.n_classes fc - 1 do
    let ms = Fault_collapse.members fc c in
    check "class non-empty" true (ms <> []);
    check "representative is a member" true
      (List.mem (Fault_collapse.representative fc c) ms);
    List.iter
      (fun f ->
        check "no overlap" false (Hashtbl.mem seen f);
        Hashtbl.replace seen f ();
        check "class_of agrees" true (Fault_collapse.class_of fc f = Some c);
        incr total)
      ms
  done;
  check_int "partition complete" (List.length u) !total;
  (* Semantic soundness: members share one faulty function, so any
     pattern set detects all of a class or none of it. *)
  let patterns =
    Array.init 32 (fun _ -> Array.init 5 (fun _ -> Hft_util.Rng.bool rng))
  in
  let r = Fsim.comb nl ~patterns u in
  let det = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace det f ()) r.Fsim.detected;
  for c = 0 to Fault_collapse.n_classes fc - 1 do
    match Fault_collapse.members fc c with
    | [] | [ _ ] -> ()
    | m :: ms ->
      let d0 = Hashtbl.mem det m in
      List.iter
        (fun f ->
          if Hashtbl.mem det f <> d0 then
            Alcotest.failf "class %d split by fault simulation" c)
        ms
  done

(* The Drop pipeline must reach exactly the Naive verdicts — collapsing
   and dropping are pure work-avoidance, not approximation. *)
let prop_seq_atpg_drop_matches_naive =
  QCheck.Test.make ~name:"Seq_atpg Drop verdicts = Naive verdicts" ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let nl = random_comb_netlist rng ~n_pi:4 ~n_gates:10 in
      let faults = Fault.universe nl in
      let naive =
        Seq_atpg.run ~backtrack_limit:2000 ~max_frames:1
          ~strategy:Seq_atpg.Naive nl ~faults ~scanned:[]
      in
      let drop =
        Seq_atpg.run ~backtrack_limit:2000 ~max_frames:1
          ~strategy:Seq_atpg.Drop nl ~faults ~scanned:[]
      in
      naive.Seq_atpg.aborted = 0 && drop.Seq_atpg.aborted = 0
      && naive.Seq_atpg.detected = drop.Seq_atpg.detected
      && naive.Seq_atpg.untestable = drop.Seq_atpg.untestable
      (* ...and it must actually be cheaper (or equal on tiny cases). *)
      && drop.Seq_atpg.implications <= naive.Seq_atpg.implications)

let test_seq_atpg_drop_on_sequential () =
  (* Same equivalence on a genuinely sequential circuit. *)
  let nl = shift_register () in
  let faults = Fault.universe nl in
  let naive =
    Seq_atpg.run ~max_frames:4 ~strategy:Seq_atpg.Naive nl ~faults ~scanned:[]
  in
  let drop =
    Seq_atpg.run ~max_frames:4 ~strategy:Seq_atpg.Drop nl ~faults ~scanned:[]
  in
  check_int "detected equal" naive.Seq_atpg.detected drop.Seq_atpg.detected;
  check_int "untestable equal" naive.Seq_atpg.untestable
    drop.Seq_atpg.untestable;
  check "drop effort no worse" true
    (drop.Seq_atpg.implications <= naive.Seq_atpg.implications)

(* Minimized fuzz find (seed 4246): the multi-frame PODEM's propagation
   objective list once had a gap — when every D-frontier gate's first
   unassigned input was already implied, no objective backtraced and
   the search concluded Untestable while a different schedule (the
   drop engine, warmed by earlier tests) detected the same fault
   (n12.in0/SA1).  The fallback objectives close the gap; this is the
   differential regression pinning it. *)
let test_seq_atpg_seed_4246_sound () =
  let nl = Netlist_gen.sequential ~seed:4246 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let faults = Fault.collapsed nl in
  let scanned = List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl) in
  let outcomes strategy =
    Hft_obs.with_enabled true @@ fun () ->
    Hft_obs.reset ();
    ignore
      (Seq_atpg.run ~backtrack_limit:30 ~max_frames:3 ~strategy nl ~faults
         ~scanned);
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (row : Hft_obs.Ledger.row) ->
        let kind = Hft_obs.Ledger.resolution_key row.Hft_obs.Ledger.lr_resolution in
        List.iter
          (fun m -> Hashtbl.replace tbl m kind)
          row.Hft_obs.Ledger.lr_members)
      (Hft_obs.Ledger.rows ());
    Hft_obs.reset ();
    tbl
  in
  let o_naive = outcomes Seq_atpg.Naive in
  let o_drop = outcomes Seq_atpg.Drop in
  let is_detected k =
    List.mem k [ "drop_detected"; "podem_detected"; "salvaged" ]
  in
  (* The historical failure mode, pinned exactly. *)
  (match Hashtbl.find_opt o_naive "n12.in0/SA1" with
   | Some k ->
     check "naive detects n12.in0/SA1" true (is_detected k)
   | None -> Alcotest.fail "n12.in0/SA1 missing from naive ledger");
  (match Hashtbl.find_opt o_drop "n12.in0/SA1" with
   | Some k -> check "drop detects n12.in0/SA1" true (is_detected k)
   | None -> Alcotest.fail "n12.in0/SA1 missing from drop ledger");
  (* ...and the general soundness differential over the whole circuit:
     detected-by-one, proven-untestable-by-the-other is always a bug. *)
  Hashtbl.iter
    (fun f k1 ->
      match Hashtbl.find_opt o_drop f with
      | Some k2 ->
        if
          (is_detected k1 && k2 = "untestable")
          || (k1 = "untestable" && is_detected k2)
        then
          Alcotest.failf "fault %s: naive says %s, drop says %s" f k1 k2
      | None -> Alcotest.failf "fault %s missing from drop ledger" f)
    o_naive

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hft_gate"
    [
      ( "netlist",
        [
          Alcotest.test_case "structure" `Quick test_netlist_structure;
          Alcotest.test_case "arity" `Quick test_netlist_arity_checked;
          Alcotest.test_case "cycle detection" `Quick test_comb_cycle_detected;
          Alcotest.test_case "sequential sim" `Quick test_sequential_sim;
        ] );
      ( "expand",
        [
          Alcotest.test_case "blocks match reference" `Quick
            test_blocks_match_reference;
          Alcotest.test_case "multi-kind block" `Quick test_multi_kind_block;
          qt prop_adder_width_sweep;
          Alcotest.test_case "datapath expansion matches RTL" `Quick
            test_expanded_datapath_matches_rtl;
          Alcotest.test_case "expansion with state" `Quick
            test_expanded_with_state;
        ] );
      ( "fault",
        [
          Alcotest.test_case "universe" `Quick test_fault_universe;
          Alcotest.test_case "fsim obvious" `Quick test_fsim_detects_obvious;
          Alcotest.test_case "adder coverage" `Quick
            test_fsim_random_coverage_high_on_adder;
          Alcotest.test_case "curve monotone" `Quick test_coverage_curve_monotone;
        ] );
      ( "podem",
        [
          Alcotest.test_case "simple" `Quick test_podem_simple;
          Alcotest.test_case "redundant untestable" `Quick
            test_podem_untestable_redundant;
          Alcotest.test_case "verified by fsim" `Quick
            test_podem_tests_verified_by_fsim;
          Alcotest.test_case "full adder coverage" `Quick
            test_podem_full_coverage_small_adder;
        ] );
      ( "seq_atpg",
        [
          Alcotest.test_case "unroll" `Quick test_unroll_structure;
          Alcotest.test_case "shift register" `Quick test_seq_atpg_shift_register;
          Alcotest.test_case "scan helps loop" `Quick
            test_seq_atpg_scan_helps_loop;
          qt prop_seq_atpg_tests_consistent;
        ] );
      ( "podem_vs_exhaustive",
        [ qt prop_podem_agrees_with_exhaustive ] );
      ( "fault_dropping",
        [
          qt prop_fsim_cone_matches_naive;
          qt prop_detect_groups_tri_matches_check;
          Alcotest.test_case "collapse invariants" `Quick
            test_fault_collapse_invariants;
          qt prop_seq_atpg_drop_matches_naive;
          Alcotest.test_case "drop on sequential" `Quick
            test_seq_atpg_drop_on_sequential;
          Alcotest.test_case "seed 4246 reproducer sound" `Quick
            test_seq_atpg_seed_4246_sound;
        ] );
      ( "ctrl_expand",
        [
          Alcotest.test_case "composite matches RTL" `Quick
            test_composite_matches_rtl;
          Alcotest.test_case "composite ATPG" `Quick
            test_composite_atpg_test_vectors_help;
        ] );
      ( "gsgraph",
        [
          Alcotest.test_case "shift register" `Quick test_gsgraph_shift_register;
          Alcotest.test_case "loop" `Quick test_gsgraph_loop;
          Alcotest.test_case "expanded diffeq" `Quick
            test_gsgraph_expanded_diffeq_has_loops;
        ] );
    ]
