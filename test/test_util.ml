open Hft_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Digraph                                                            *)
(* ------------------------------------------------------------------ *)

let ring n =
  let g = Digraph.create n in
  for i = 0 to n - 1 do
    Digraph.add_edge g i ((i + 1) mod n)
  done;
  g

let test_digraph_basic () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  check_int "size ignores duplicate edge" 2 (Digraph.size g);
  check "mem" true (Digraph.mem_edge g 0 1);
  check "not mem" false (Digraph.mem_edge g 1 0);
  Digraph.remove_edge g 0 1;
  check "removed" false (Digraph.mem_edge g 0 1);
  check_int "size after removal" 1 (Digraph.size g)

let test_digraph_detach () =
  let g = ring 5 in
  Digraph.detach g 2;
  check_int "detach removes both directions" 3 (Digraph.size g);
  check "acyclic after detach" true (Digraph.is_acyclic g)

let test_scc_ring () =
  let g = ring 6 in
  let count, comp = Digraph.scc g in
  check_int "one SCC" 1 count;
  Array.iter (fun c -> check_int "same comp" comp.(0) c) comp

let test_scc_dag () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 3;
  let count, _ = Digraph.scc g in
  check_int "four singleton SCCs" 4 count

let test_scc_two_loops () =
  (* Two 2-rings joined by a bridge. *)
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 0;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 3 2;
  let count, comp = Digraph.scc g in
  check_int "two nontrivial SCCs" 2 count;
  check "0,1 together" true (comp.(0) = comp.(1));
  check "2,3 together" true (comp.(2) = comp.(3));
  check "separate" true (comp.(0) <> comp.(2))

let test_topo () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 3 1;
  Digraph.add_edge g 1 0;
  Digraph.add_edge g 3 2;
  Digraph.add_edge g 2 0;
  (match Digraph.topological_sort g with
   | None -> Alcotest.fail "expected acyclic"
   | Some order ->
     let pos = Array.make 4 0 in
     List.iteri (fun i v -> pos.(v) <- i) order;
     Digraph.iter_edges (fun u v -> check "edge respects order" true (pos.(u) < pos.(v))) g);
  Digraph.add_edge g 0 3;
  check "cycle detected" true (Digraph.topological_sort g = None)

let test_self_loop_acyclicity () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 0;
  check "self loop is a cycle" false (Digraph.is_acyclic g);
  check "tolerated when ignored" true
    (Digraph.is_acyclic ~ignore_self_loops:true g)

let test_cycles_enum () =
  let g = ring 4 in
  Digraph.add_edge g 1 1;
  let cys = Digraph.cycles g ~max_len:6 ~max_count:100 in
  check_int "ring + self loop" 2 (List.length cys);
  check "self loop found" true (List.mem [ 1 ] cys);
  check "ring found" true (List.mem [ 0; 1; 2; 3 ] cys)

let test_cycles_bounded () =
  let g = ring 8 in
  check_int "length bound excludes long ring" 0
    (List.length (Digraph.cycles g ~max_len:7 ~max_count:10));
  check_int "count bound" 1
    (List.length (Digraph.cycles g ~max_len:8 ~max_count:1))

let test_longest_path () =
  let g = Digraph.create 5 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 0 3;
  Digraph.add_edge g 3 4;
  Digraph.add_edge g 4 2;
  let d = Digraph.longest_path_from_sources g in
  check_int "longest to sink" 3 d.(2)

let test_bfs () =
  let g = ring 5 in
  let d = Digraph.bfs_dist g 0 in
  check_int "around the ring" 4 d.(4);
  let r = Digraph.reachable g 0 in
  check "all reachable" true (Array.for_all (fun b -> b) r)

(* Random-graph properties. *)
let gen_graph =
  QCheck.Gen.(
    sized_size (int_bound 20) (fun n ->
        let n = n + 2 in
        list_size (int_bound (n * 3)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
        >|= fun edges ->
        let g = Digraph.create n in
        List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
        g))

let arb_graph = QCheck.make ~print:(fun g -> Digraph.to_dot g) gen_graph

let prop_scc_condensation_acyclic =
  QCheck.Test.make ~name:"scc condensation is acyclic" ~count:200 arb_graph
    (fun g ->
      let count, comp = Digraph.scc g in
      let cond = Digraph.create count in
      Digraph.iter_edges
        (fun u v -> if comp.(u) <> comp.(v) then Digraph.add_edge cond comp.(u) comp.(v))
        g;
      Digraph.is_acyclic cond)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose twice is identity" ~count:200 arb_graph
    (fun g ->
      let g2 = Digraph.transpose (Digraph.transpose g) in
      List.sort compare (Digraph.edges g) = List.sort compare (Digraph.edges g2))

let prop_cycles_are_cycles =
  QCheck.Test.make ~name:"enumerated cycles are real cycles" ~count:200
    arb_graph (fun g ->
      let cys = Digraph.cycles g ~max_len:6 ~max_count:50 in
      List.for_all
        (fun cy ->
          match cy with
          | [] -> false
          | first :: _ ->
            let rec ok = function
              | [ last ] -> Digraph.mem_edge g last first
              | a :: (b :: _ as tl) -> Digraph.mem_edge g a b && ok tl
              | [] -> false
            in
            ok cy)
        cys)

(* ------------------------------------------------------------------ *)
(* Mfvs                                                               *)
(* ------------------------------------------------------------------ *)

let test_mfvs_ring () =
  let g = ring 5 in
  let fvs = Mfvs.greedy g in
  check_int "one cut for a ring" 1 (List.length fvs);
  check "valid" true (Mfvs.is_feedback_set g fvs)

let test_mfvs_self_loops () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 0;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 1;
  let fvs = Mfvs.greedy g in
  check "self-loop vertex in set" true (List.mem 0 fvs);
  check_int "two cuts total" 2 (List.length fvs);
  let fvs' = Mfvs.greedy ~ignore_self_loops:true g in
  check "self loop tolerated" false (List.mem 0 fvs');
  check_int "one cut" 1 (List.length fvs')

let test_mfvs_exact_beats_nothing () =
  (* Two disjoint rings sharing no vertex: need exactly 2. *)
  let g = Digraph.create 6 in
  List.iter (fun (u, v) -> Digraph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ];
  let e = Mfvs.exact g in
  check_int "exact finds 2" 2 (List.length e);
  check "valid" true (Mfvs.is_feedback_set g e)

let test_mfvs_shared_vertex () =
  (* Two rings sharing vertex 0: exact should find the single shared cut. *)
  let g = Digraph.create 5 in
  List.iter (fun (u, v) -> Digraph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 0); (0, 3); (3, 4); (4, 0) ];
  let e = Mfvs.exact g in
  check_int "single shared cut" 1 (List.length e);
  check "it is vertex 0" true (e = [ 0 ])

let prop_greedy_is_feedback_set =
  QCheck.Test.make ~name:"greedy MFVS always breaks all cycles" ~count:200
    arb_graph (fun g -> Mfvs.is_feedback_set g (Mfvs.greedy g))

let prop_exact_no_larger_than_greedy =
  QCheck.Test.make ~name:"exact MFVS <= greedy MFVS" ~count:60 arb_graph
    (fun g ->
      let e = Mfvs.exact ~limit:6 g and gr = Mfvs.greedy g in
      Mfvs.is_feedback_set g e && List.length e <= List.length gr)

(* ------------------------------------------------------------------ *)
(* Interval                                                           *)
(* ------------------------------------------------------------------ *)

let iv = Interval.make

let test_interval_overlap () =
  check "disjoint" false (Interval.overlaps (iv 0 2) (iv 2 4));
  check "nested" true (Interval.overlaps (iv 0 4) (iv 1 2));
  check "crossing" true (Interval.overlaps (iv 0 3) (iv 2 5));
  check "empty never overlaps" false (Interval.overlaps (iv 2 2) (iv 0 4))

let test_left_edge_classic () =
  let items =
    [ ("a", iv 0 3); ("b", iv 3 5); ("c", iv 1 4); ("d", iv 4 6) ]
  in
  let assign, n = Interval.left_edge items in
  check_int "two tracks" 2 n;
  (* a,b can share; c,d can share. *)
  let track k = List.assoc k assign in
  check "a/b same" true (track "a" = track "b");
  check "c/d same" true (track "c" = track "d");
  check "a/c differ" true (track "a" <> track "c")

let arb_intervals =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 30)
        (pair (int_bound 20) (int_range 1 8) >|= fun (lo, len) ->
         Interval.make lo (lo + len)))

let prop_left_edge_valid =
  QCheck.Test.make ~name:"left-edge never overlaps within a track" ~count:300
    arb_intervals (fun ivs ->
      let items = List.mapi (fun i v -> (i, v)) ivs in
      let assign, _ = Interval.left_edge items in
      List.for_all
        (fun (i, t) ->
          List.for_all
            (fun (j, t') ->
              i = j || t <> t'
              || not (Interval.overlaps (List.nth ivs i) (List.nth ivs j)))
            assign)
        assign)

let prop_left_edge_optimal =
  QCheck.Test.make ~name:"left-edge uses exactly max-overlap tracks"
    ~count:300 arb_intervals (fun ivs ->
      let items = List.mapi (fun i v -> (i, v)) ivs in
      let _, n = Interval.left_edge items in
      n = max 1 (Interval.max_overlap ivs))

(* ------------------------------------------------------------------ *)
(* Union_find                                                         *)
(* ------------------------------------------------------------------ *)

let test_union_find () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  check "0~3" true (Union_find.same uf 0 3);
  check "0!~4" false (Union_find.same uf 0 4);
  let groups = Union_find.groups uf in
  check_int "three classes" 3 (List.length groups);
  check "class of 0 has 4 members" true
    (List.exists (fun (_, ms) -> List.length ms = 4) groups)

(* ------------------------------------------------------------------ *)
(* Bitvec                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitvec_ops () =
  let n = 100 in
  let a = Bitvec.create n and b = Bitvec.create n and d = Bitvec.create n in
  Bitvec.set a 3 true;
  Bitvec.set a 99 true;
  Bitvec.set b 99 true;
  Bitvec.and_ ~dst:d a b;
  check_int "and popcount" 1 (Bitvec.popcount d);
  Bitvec.or_ ~dst:d a b;
  check_int "or popcount" 2 (Bitvec.popcount d);
  Bitvec.xor ~dst:d a b;
  check "xor" true (Bitvec.get d 3 && not (Bitvec.get d 99));
  Bitvec.not_ ~dst:d a;
  check_int "not popcount" (n - 2) (Bitvec.popcount d)

let test_bitvec_mux () =
  let n = 10 in
  let s = Bitvec.create n and a = Bitvec.create n and b = Bitvec.create n in
  let d = Bitvec.create n in
  Bitvec.fill a false;
  Bitvec.fill b true;
  Bitvec.set s 4 true;
  Bitvec.mux ~dst:d s a b;
  check "selected b at 4" true (Bitvec.get d 4);
  check "selected a elsewhere" false (Bitvec.get d 5)

let prop_bitvec_not_involutive =
  QCheck.Test.make ~name:"bitvec not is involutive" ~count:200
    QCheck.(pair (int_range 1 200) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let a = Bitvec.create n in
      Bitvec.randomize rng a;
      let b = Bitvec.create n and c = Bitvec.create n in
      Bitvec.not_ ~dst:b a;
      Bitvec.not_ ~dst:c b;
      Bitvec.equal a c)

let prop_bitvec_ones_popcount =
  QCheck.Test.make ~name:"ones agrees with popcount" ~count:200
    QCheck.(pair (int_range 1 200) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let a = Bitvec.create n in
      Bitvec.randomize rng a;
      List.length (Bitvec.ones a) = Bitvec.popcount a
      && List.for_all (Bitvec.get a) (Bitvec.ones a))

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  check "split differs from parent" true (Rng.bits64 a <> Rng.bits64 c)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check "in range" true (x >= 0 && x < 17)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check "permutation" true (sorted = Array.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Pretty                                                             *)
(* ------------------------------------------------------------------ *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pretty_ragged_rejected () =
  check "ragged row rejected" true
    (match Pretty.render ~header:[ "a"; "b" ] [ [ "only one" ] ] with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_pretty_formatters () =
  Alcotest.(check string) "fi" "42" (Pretty.fi 42);
  Alcotest.(check string) "ff" "3.14" (Pretty.ff ~dp:2 3.14159);
  Alcotest.(check string) "pct" "50.0%" (Pretty.pct 0.5)

let test_interval_utilities () =
  let open Interval in
  check "contains" true (contains (make 1 4) 3);
  check "not contains hi" false (contains (make 1 4) 4);
  check_int "length" 3 (length (make 1 4));
  check_int "empty length" 0 (length (make 4 4));
  Alcotest.(check string) "to_string" "[1,4)" (to_string (make 1 4));
  check "hull" true (hull (make 1 3) (make 5 7) = make 1 7);
  check "hull with empty" true (hull (make 2 2) (make 5 7) = make 5 7)

let test_digraph_dot () =
  let g = ring 3 in
  let dot = Digraph.to_dot ~name:(fun v -> Printf.sprintf "v%d" v) g in
  check "digraph keyword" true (String.length dot > 0 && String.sub dot 0 7 = "digraph")

let test_pretty_table () =
  let s =
    Pretty.render ~header:[ "name"; "n" ] [ [ "ring"; "5" ]; [ "dag"; "12" ] ]
  in
  check "contains header" true (contains_sub s "name");
  check "contains row" true (contains_sub s "ring");
  check "right-aligns numbers" true (contains_sub s "  5")

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
        check
          (Printf.sprintf "float %h survives" f)
          true
          (Int64.bits_of_float f = Int64.bits_of_float f')
      | Ok _ -> Alcotest.fail "float parsed as non-float"
      | Error e -> Alcotest.fail e)
    [ 1.2e-4; -1.2e-4; 5.0; -0.0; 0.1; 1e300; -7.25e-12; 3.14159265358979312;
      Float.min_float; 1.0 +. epsilon_float ]

let test_json_float_compact () =
  let s f = Json.to_string (Json.Float f) in
  Alcotest.(check string) "integral keeps .0" "5.0" (s 5.0);
  Alcotest.(check string) "negative zero" "-0.0" (s (-0.0));
  Alcotest.(check string) "shortest form" "0.00012" (s 1.2e-4);
  Alcotest.(check string) "nan degrades to null" "null" (s Float.nan);
  Alcotest.(check string) "inf degrades to null" "null" (s Float.infinity)

let test_json_number_classes () =
  (match Json.parse "42" with
   | Ok (Json.Int 42) -> ()
   | _ -> Alcotest.fail "plain int");
  (match Json.parse "-42" with
   | Ok (Json.Int (-42)) -> ()
   | _ -> Alcotest.fail "negative int");
  (match Json.parse "42.0" with
   | Ok (Json.Float f) -> check "fractional" true (f = 42.0)
   | _ -> Alcotest.fail "zero-fraction float");
  match Json.parse "1.2e-4" with
  | Ok (Json.Float f) -> check "exponent" true (f = 1.2e-4)
  | _ -> Alcotest.fail "exponent float"

let test_json_error_position () =
  match Json.parse "{\n  \"a\": tru }" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    check "mentions line" true (contains_sub msg "line 2");
    check "mentions column" true (contains_sub msg "column")

let test_json_doc_roundtrip () =
  let doc =
    Json.Obj
      [ ("name", Json.String "hft \"quoted\"\n");
        ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
        ("ok", Json.Bool true) ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' -> check "document round-trips" true (doc = doc')
  | Error e -> Alcotest.fail e

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hft_util"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic edges" `Quick test_digraph_basic;
          Alcotest.test_case "detach" `Quick test_digraph_detach;
          Alcotest.test_case "scc ring" `Quick test_scc_ring;
          Alcotest.test_case "scc dag" `Quick test_scc_dag;
          Alcotest.test_case "scc two loops" `Quick test_scc_two_loops;
          Alcotest.test_case "topological sort" `Quick test_topo;
          Alcotest.test_case "self-loop acyclicity" `Quick
            test_self_loop_acyclicity;
          Alcotest.test_case "cycle enumeration" `Quick test_cycles_enum;
          Alcotest.test_case "cycle bounds" `Quick test_cycles_bounded;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "bfs" `Quick test_bfs;
          qt prop_scc_condensation_acyclic;
          qt prop_transpose_involution;
          qt prop_cycles_are_cycles;
        ] );
      ( "mfvs",
        [
          Alcotest.test_case "ring" `Quick test_mfvs_ring;
          Alcotest.test_case "self loops" `Quick test_mfvs_self_loops;
          Alcotest.test_case "exact two rings" `Quick
            test_mfvs_exact_beats_nothing;
          Alcotest.test_case "exact shared vertex" `Quick
            test_mfvs_shared_vertex;
          qt prop_greedy_is_feedback_set;
          qt prop_exact_no_larger_than_greedy;
        ] );
      ( "interval",
        [
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
          Alcotest.test_case "left edge classic" `Quick test_left_edge_classic;
          qt prop_left_edge_valid;
          qt prop_left_edge_optimal;
        ] );
      ("union_find", [ Alcotest.test_case "basic" `Quick test_union_find ]);
      ( "bitvec",
        [
          Alcotest.test_case "logic ops" `Quick test_bitvec_ops;
          Alcotest.test_case "mux" `Quick test_bitvec_mux;
          qt prop_bitvec_not_involutive;
          qt prop_bitvec_ones_popcount;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "table" `Quick test_pretty_table;
          Alcotest.test_case "ragged rejected" `Quick test_pretty_ragged_rejected;
          Alcotest.test_case "formatters" `Quick test_pretty_formatters;
        ] );
      ( "json",
        [
          Alcotest.test_case "float round-trip" `Quick test_json_float_roundtrip;
          Alcotest.test_case "float printing" `Quick test_json_float_compact;
          Alcotest.test_case "number classes" `Quick test_json_number_classes;
          Alcotest.test_case "error position" `Quick test_json_error_position;
          Alcotest.test_case "document round-trip" `Quick test_json_doc_roundtrip;
        ] );
      ( "misc",
        [
          Alcotest.test_case "interval utilities" `Quick test_interval_utilities;
          Alcotest.test_case "digraph dot" `Quick test_digraph_dot;
        ] );
    ]
