open Hft_gate
open Hft_lint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has_code code diags =
  List.exists (fun d -> d.Diagnostic.code = code) diags

let errors_with_code code diags =
  List.exists
    (fun d ->
      d.Diagnostic.code = code && d.Diagnostic.severity = Diagnostic.Error)
    diags

(* ------------------------------------------------------------------ *)
(* The paper's worked example: Fig. 1 bindings                        *)
(* ------------------------------------------------------------------ *)

let fig1_lint which =
  let g, d =
    Hft_core.Fig1_exp.datapath
      (match which with `B -> Hft_core.Fig1_exp.B | `C -> Hft_core.Fig1_exp.C)
  in
  Engine.lint_datapath ~graph:g d

let test_fig1_b_raises_l001 () =
  let diags = fig1_lint `B in
  check "loop-creating binding raises HFT-L001" true
    (errors_with_code "HFT-L001" diags);
  check "result is not clean" false (Engine.clean diags)

let test_fig1_c_clean () =
  let diags = fig1_lint `C in
  check "no HFT-L001 on self-loop-only binding" false
    (has_code "HFT-L001" diags);
  check "self-loop-only binding lints clean" true (Engine.clean diags);
  (* Self-loops still surface as range warnings, not errors. *)
  check "self-loops reported as HFT-L002 warnings" true
    (has_code "HFT-L002" diags)

(* ------------------------------------------------------------------ *)
(* The lint-as-oracle contract: every DFT flow lints clean            *)
(* ------------------------------------------------------------------ *)

let test_flows_lint_clean () =
  List.iter
    (fun bench ->
      let g = Hft_cdfg.Bench_suite.by_name bench in
      List.iter
        (fun kind ->
          let r = Hft_core.Flow.synthesize kind g in
          let diags = Engine.lint_flow r in
          check
            (Printf.sprintf "%s/%s lints clean" bench
               (Hft_core.Flow.flow_kind_to_string kind))
            true (Engine.clean diags))
        [ Hft_core.Flow.Partial_scan; Hft_core.Flow.Bist ])
    [ "diffeq"; "tseng" ]

let test_conventional_diffeq_has_loop_errors () =
  (* The conventional flow leaves assignment loops unbroken; lint must
     say so — that is the whole point of the tool. *)
  let g = Hft_cdfg.Bench_suite.by_name "diffeq" in
  let r = Hft_core.Flow.synthesize Hft_core.Flow.Conventional g in
  check "conventional diffeq raises HFT-L001" true
    (errors_with_code "HFT-L001" (Engine.lint_flow r))

(* ------------------------------------------------------------------ *)
(* Golden SCOAP values on a hand-computed netlist                     *)
(* ------------------------------------------------------------------ *)

(* sel ? xor(a,b) : and(a,b), one PO.  Values below are hand-derived
   from the rules documented in scoap.mli. *)
let test_scoap_golden_mux () =
  let nl = Netlist.create ~name:"golden" () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Pi [||] in
  let sel = Netlist.add nl ~name:"sel" Netlist.Pi [||] in
  let and1 = Netlist.add nl ~name:"and1" Netlist.And [| a; b |] in
  let xor1 = Netlist.add nl ~name:"xor1" Netlist.Xor [| a; b |] in
  let mux = Netlist.add nl ~name:"mux" Netlist.Mux2 [| sel; and1; xor1 |] in
  let _po = Netlist.add nl ~name:"out" Netlist.Po [| mux |] in
  let m = Scoap.analyze nl in
  check_int "cc0(a)" 1 m.Scoap.cc0.(a);
  check_int "cc1(a)" 1 m.Scoap.cc1.(a);
  check_int "cc0(and1)" 2 m.Scoap.cc0.(and1);
  check_int "cc1(and1)" 3 m.Scoap.cc1.(and1);
  check_int "cc0(xor1)" 3 m.Scoap.cc0.(xor1);
  check_int "cc1(xor1)" 3 m.Scoap.cc1.(xor1);
  check_int "cc0(mux)" 4 m.Scoap.cc0.(mux);
  check_int "cc1(mux)" 5 m.Scoap.cc1.(mux);
  check_int "co(mux)" 0 m.Scoap.co.(mux);
  check_int "co(and1)" 2 m.Scoap.co.(and1);
  check_int "co(xor1)" 2 m.Scoap.co.(xor1);
  check_int "co(sel)" 6 m.Scoap.co.(sel);
  check_int "co(a)" 4 m.Scoap.co.(a);
  check_int "co(b)" 4 m.Scoap.co.(b);
  (* Purely combinational: sequential measures are all zero. *)
  check_int "sc0(mux)" 0 m.Scoap.sc0.(mux);
  check_int "so(a)" 0 m.Scoap.so.(a)

let test_scoap_golden_dff () =
  let nl = Netlist.create ~name:"seq" () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let d1 = Netlist.add nl ~name:"d1" Netlist.Dff [| a |] in
  let d2 = Netlist.add nl ~name:"d2" Netlist.Dff [| d1 |] in
  let _po = Netlist.add nl ~name:"out" Netlist.Po [| d2 |] in
  let m = Scoap.analyze nl in
  (* Each flop adds 1 to both flavours of controllability and to
     sequential observability. *)
  check_int "cc0(d1)" 2 m.Scoap.cc0.(d1);
  check_int "cc0(d2)" 3 m.Scoap.cc0.(d2);
  check_int "sc0(a)" 0 m.Scoap.sc0.(a);
  check_int "sc0(d1)" 1 m.Scoap.sc0.(d1);
  check_int "sc1(d2)" 2 m.Scoap.sc1.(d2);
  check_int "so(d2)" 0 m.Scoap.so.(d2);
  check_int "so(d1)" 1 m.Scoap.so.(d1);
  check_int "so(a)" 2 m.Scoap.so.(a);
  check_int "co(a)" 2 m.Scoap.co.(a)

let test_scoap_unobservable_is_infinite () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let g = Netlist.add nl Netlist.Not [| a |] in
  (* [g] drives nothing: unobservable. *)
  let m = Scoap.analyze nl in
  check "dangling net unobservable" true (Scoap.is_inf m.Scoap.co.(g));
  check "a unobservable too" true (Scoap.is_inf m.Scoap.co.(a))

(* ------------------------------------------------------------------ *)
(* Netlist-level rules: combinational cycles, dangling nets           *)
(* ------------------------------------------------------------------ *)

let cyclic_netlist () =
  let nl = Netlist.create ~name:"cyclic" () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let g1 = Netlist.add nl Netlist.And [| a; a |] in
  let g2 = Netlist.add nl Netlist.Or [| g1; a |] in
  let _po = Netlist.add nl Netlist.Po [| g2 |] in
  (* Close the loop: g1's second input becomes g2. *)
  Netlist.set_fanin nl g1 1 g2;
  (nl, g1, g2)

let test_comb_cycle_detected () =
  let nl, g1, g2 = cyclic_netlist () in
  match Rules.comb_cycles nl with
  | [ cyc ] ->
    check "cycle contains g1" true (List.mem g1 cyc);
    check "cycle contains g2" true (List.mem g2 cyc)
  | other ->
    Alcotest.failf "expected exactly one cycle, got %d" (List.length other)

let test_scoap_total_on_cycles () =
  (* SCOAP must not diverge or raise on a cyclic netlist; the loop is
     still controllable from outside through the PI. *)
  let nl, g1, g2 = cyclic_netlist () in
  let m = Scoap.analyze nl in
  check_int "cc0(g1) via PI" 2 m.Scoap.cc0.(g1);
  check_int "cc0(g2)" 4 m.Scoap.cc0.(g2)

let test_dangling_detected () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let g = Netlist.add nl Netlist.Not [| a |] in
  let b = Netlist.add nl Netlist.Pi [||] in
  let _po = Netlist.add nl Netlist.Po [| b |] in
  check "dangling gate flagged" true (List.mem g (Rules.dangling_nets nl))

(* ------------------------------------------------------------------ *)
(* HFT-L006: degraded BIST register kinds are caught                  *)
(* ------------------------------------------------------------------ *)

let test_l006_degraded_bist_register () =
  let g = Hft_cdfg.Bench_suite.by_name "diffeq" in
  let r = Hft_core.Flow.synthesize Hft_core.Flow.Bist g in
  let d = r.Hft_core.Flow.datapath in
  check "bist flow lints clean before degradation" true
    (Engine.clean (Engine.lint_datapath d));
  let plan = Hft_bist.Bilbo.plan d in
  (* Strip the BIST capability from one register the plan relies on. *)
  let victim =
    let rec find r =
      if r >= Hft_rtl.Datapath.n_regs d then
        Alcotest.fail "no register with a BIST role"
      else if plan.Hft_bist.Bilbo.roles.(r) <> Hft_bist.Bilbo.R_none then r
      else find (r + 1)
    in
    find 0
  in
  d.Hft_rtl.Datapath.regs.(victim).Hft_rtl.Datapath.r_kind <-
    Hft_rtl.Datapath.Plain;
  check "degraded register raises HFT-L006" true
    (errors_with_code "HFT-L006" (Engine.lint_datapath d))

(* ------------------------------------------------------------------ *)
(* Reporting: JSON round-trips through the parser                     *)
(* ------------------------------------------------------------------ *)

let test_json_report_parses () =
  let g, d = Hft_core.Fig1_exp.datapath Hft_core.Fig1_exp.B in
  let diags = Engine.lint_datapath ~graph:g d in
  let json =
    Report.to_json
      ~meta:[ ("bench", Hft_util.Json.String "fig1b") ]
      ~datapath:d diags
  in
  let text = Hft_util.Json.to_string json in
  match Hft_util.Json.parse text with
  | Error msg -> Alcotest.failf "emitted JSON does not parse: %s" msg
  | Ok v ->
    check "bench field survives" true
      (Hft_util.Json.member "bench" v
      = Some (Hft_util.Json.String "fig1b"));
    (match Hft_util.Json.member "summary" v with
     | Some s ->
       (match Hft_util.Json.member "errors" s with
        | Some (Hft_util.Json.Int n) ->
          check "at least one error for fig1b" true (n >= 1)
        | _ -> Alcotest.fail "summary.errors missing")
     | None -> Alcotest.fail "summary missing");
    (match Hft_util.Json.member "diagnostics" v with
     | Some (Hft_util.Json.List l) ->
       check_int "diagnostic count matches" (List.length diags)
         (List.length l)
     | _ -> Alcotest.fail "diagnostics missing")

let test_json_parser_edges () =
  let ok s = match Hft_util.Json.parse s with Ok _ -> true | Error _ -> false in
  check "escapes" true (ok "[1, \"a\\n\\u00e9\", {\"k\": null}, -2.5e3]");
  check "empty containers" true (ok "{\"a\": [], \"b\": {}}");
  check "trailing garbage rejected" false (ok "{} x");
  check "unterminated rejected" false (ok "[1, 2");
  check "bare word rejected" false (ok "nope")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "fig1",
        [
          Alcotest.test_case "binding (b) raises HFT-L001" `Quick
            test_fig1_b_raises_l001;
          Alcotest.test_case "binding (c) lints clean" `Quick
            test_fig1_c_clean;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "DFT flows lint clean" `Quick
            test_flows_lint_clean;
          Alcotest.test_case "conventional flow flagged" `Quick
            test_conventional_diffeq_has_loop_errors;
        ] );
      ( "scoap",
        [
          Alcotest.test_case "golden mux circuit" `Quick test_scoap_golden_mux;
          Alcotest.test_case "golden DFF chain" `Quick test_scoap_golden_dff;
          Alcotest.test_case "unobservable is infinite" `Quick
            test_scoap_unobservable_is_infinite;
          Alcotest.test_case "total on cycles" `Quick
            test_scoap_total_on_cycles;
        ] );
      ( "rules",
        [
          Alcotest.test_case "comb cycle" `Quick test_comb_cycle_detected;
          Alcotest.test_case "dangling net" `Quick test_dangling_detected;
          Alcotest.test_case "degraded BIST register" `Quick
            test_l006_degraded_bist_register;
        ] );
      ( "report",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_json_report_parses;
          Alcotest.test_case "JSON parser edges" `Quick test_json_parser_edges;
        ] );
    ]
