(* Hft_analysis: post-dominators, static implications and the guided-
   PODEM contract, checked against hand-built circuits and exhaustive
   enumeration (the circuits are small enough to enumerate every
   source assignment, so every soundness claim has a ground truth). *)

open Hft_gate
open Hft_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Shared harness                                                     *)
(* ------------------------------------------------------------------ *)

let sources nl = Netlist.pis nl @ Netlist.dffs nl

(* Every total 0/1 assignment of the sources, with all internal nodes
   evaluated (three-valued sim on concrete inputs is concrete). *)
let enum_states nl f =
  let srcs = sources nl in
  let k = List.length srcs in
  assert (k <= 12);
  let st = Sim.tcreate nl in
  for code = 0 to (1 lsl k) - 1 do
    List.iteri (fun i s -> st.(s) <- (code lsr i) land 1) srcs;
    Sim.teval nl st;
    f st
  done

(* The full-scan view used throughout: every DFF freely assignable,
   its D input observed next to the POs. *)
let scan_view nl =
  let dffs = Netlist.dffs nl in
  ( Netlist.pis nl @ dffs,
    Netlist.pos nl @ List.map (fun d -> (Netlist.fanin nl d).(0)) dffs )

(* Reference reachability on the propagation graph (comb fanout edges,
   Dff consumers excluded, observe nodes adjacent to the sink),
   optionally with one node removed — the ground truth a post-dominator
   must match: removing a proper post-dominator of [v] must disconnect
   [v] from every observe node. *)
let bfs_reaches nl ~observe ?(avoid = -1) v =
  if v = avoid then false
  else begin
    let n = Netlist.n_nodes nl in
    let obs = Array.make n false in
    List.iter (fun o -> obs.(o) <- true) observe;
    let seen = Array.make n false in
    let q = Queue.create () in
    Queue.add v q;
    seen.(v) <- true;
    let found = ref false in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      if obs.(u) then found := true
      else
        List.iter
          (fun w ->
            if
              w <> avoid && (not seen.(w)) && Netlist.kind nl w <> Netlist.Dff
            then begin
              seen.(w) <- true;
              Queue.add w q
            end)
          (Netlist.fanout nl u)
    done;
    !found
  end

(* ------------------------------------------------------------------ *)
(* Dominators: hand-checked shapes                                    *)
(* ------------------------------------------------------------------ *)

let test_dom_fanout_free () =
  (* a -> g1 -> g2 -> y: every downstream node post-dominates. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let g1 = Netlist.add nl Netlist.Buf [| a |] in
  let g2 = Netlist.add nl Netlist.Not [| g1 |] in
  let y = Netlist.add nl Netlist.Po [| g2 |] in
  let t = Dominators.compute nl ~observe:[ y ] in
  check "a reaches" true (Dominators.reaches t a);
  Alcotest.(check (list int)) "chain of a" [ g1; g2; y ] (Dominators.chain t a)

let test_dom_reconvergent () =
  (* Diamond: a forks to g1/g2, reconverges at g3; only g3 and y
     post-dominate the stem. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let b = Netlist.add nl Netlist.Pi [||] in
  let g1 = Netlist.add nl Netlist.And [| a; b |] in
  let g2 = Netlist.add nl Netlist.Or [| a; b |] in
  let g3 = Netlist.add nl Netlist.Xor [| g1; g2 |] in
  let y = Netlist.add nl Netlist.Po [| g3 |] in
  let t = Dominators.compute nl ~observe:[ y ] in
  Alcotest.(check (list int)) "chain of a" [ g3; y ] (Dominators.chain t a);
  Alcotest.(check (list int)) "chain of g1" [ g3; y ] (Dominators.chain t g1)

let test_dom_unobservable () =
  (* A gate feeding only a DFF cannot reach the frame's observe set. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let b = Netlist.add nl Netlist.Pi [||] in
  let g = Netlist.add nl Netlist.And [| a; b |] in
  let _d = Netlist.add nl Netlist.Dff [| g |] in
  let y = Netlist.add nl Netlist.Po [| a |] in
  let t = Dominators.compute nl ~observe:[ y ] in
  check "g cannot reach" false (Dominators.reaches t g);
  Alcotest.(check (list int)) "empty chain" [] (Dominators.chain t g);
  check "a still reaches" true (Dominators.reaches t a)

(* Brute force on the two Figure 1 bindings: [reaches] must agree with
   BFS, and removing any claimed post-dominator must cut every path. *)
let fig1_netlist which =
  let _, d = Hft_core.Fig1_exp.datapath which in
  (Expand.of_datapath d).Expand.netlist

let test_dom_bruteforce which () =
  let nl = fig1_netlist which in
  let _, observe = scan_view nl in
  let t = Dominators.compute nl ~observe in
  for v = 0 to Netlist.n_nodes nl - 1 do
    let reference = bfs_reaches nl ~observe v in
    if reference <> Dominators.reaches t v then
      Alcotest.failf "node %d: reaches=%b, BFS says %b"
        v (Dominators.reaches t v) reference;
    List.iter
      (fun w ->
        if w <> v && bfs_reaches nl ~observe ~avoid:w v then
          Alcotest.failf "node %d: removing post-dominator %d leaves a path"
            v w)
      (Dominators.chain t v)
  done

(* ------------------------------------------------------------------ *)
(* Implications: soundness against exhaustive simulation              *)
(* ------------------------------------------------------------------ *)

let test_impl_direct () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let b = Netlist.add nl Netlist.Pi [||] in
  let g = Netlist.add nl Netlist.And [| a; b |] in
  let _y = Netlist.add nl Netlist.Po [| g |] in
  let imp = Implications.compute nl in
  let has l l' = List.mem l' (Implications.implied imp l) in
  check "a=0 forces g=0" true (has (a, 0) (g, 0));
  check "g=1 forces a=1 (contrapositive)" true (has (g, 1) (a, 1));
  check "g=1 forces b=1" true (has (g, 1) (b, 1))

(* Every stored edge, on every circuit: whenever the source literal
   holds under a total assignment, the target literal holds too. *)
let check_impl_sound nl =
  let imp = Implications.compute nl in
  let n = Netlist.n_nodes nl in
  enum_states nl (fun st ->
      for v = 0 to n - 1 do
        for value = 0 to 1 do
          if st.(v) = value then
            List.iter
              (fun (b, vb) ->
                if st.(b) <> vb then
                  Alcotest.failf
                    "unsound edge (%d,%d) -> (%d,%d): target is %d"
                    v value b vb st.(b))
              (Implications.implied imp (v, value))
        done
      done)

(* Closure: [Contradiction] on a single literal must mean no total
   assignment produces it; [Consistent] literals must all hold. *)
let check_closure_sound nl =
  let imp = Implications.compute nl in
  let n = Netlist.n_nodes nl in
  for v = 0 to n - 1 do
    for value = 0 to 1 do
      match Implications.closure imp [ (v, value) ] with
      | Implications.Contradiction ->
        enum_states nl (fun st ->
            if st.(v) = value then
              Alcotest.failf
                "closure claims (%d,%d) unsatisfiable, assignment found" v
                value)
      | Implications.Consistent lits ->
        enum_states nl (fun st ->
            if st.(v) = value then
              List.iter
                (fun (b, vb) ->
                  if st.(b) <> vb then
                    Alcotest.failf
                      "closure of (%d,%d): implied (%d,%d) violated" v value
                      b vb)
                lits)
    done
  done

let test_impl_sound_random () =
  List.iter
    (fun seed ->
      let nl = Netlist_gen.sequential ~seed ~n_pi:4 ~n_dff:3 ~n_gates:12 in
      check_impl_sound nl;
      check_closure_sound nl)
    [ 11; 42; 1999 ]

let test_impl_constant_contradiction () =
  (* g = And(a, 0) can never be 1; the closure must prove it. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let c0 = Netlist.add nl Netlist.Const0 [||] in
  let g = Netlist.add nl Netlist.And [| a; c0 |] in
  let _y = Netlist.add nl Netlist.Po [| g |] in
  let imp = Implications.compute nl in
  check "g=1 contradictory" true
    (Implications.closure imp [ (g, 1) ] = Implications.Contradiction);
  check "g=0 consistent" true
    (match Implications.closure imp [ (g, 0) ] with
     | Implications.Consistent _ -> true
     | Implications.Contradiction -> false)

(* ------------------------------------------------------------------ *)
(* Guidance: static untestability and the guided/unguided contract    *)
(* ------------------------------------------------------------------ *)

let test_static_untestable () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let c0 = Netlist.add nl Netlist.Const0 [||] in
  let g = Netlist.add nl Netlist.And [| a; c0 |] in
  let y = Netlist.add nl Netlist.Po [| g |] in
  let f = { Fault.node = g; pin = None; stuck = false } in
  let gd = Guidance.provide nl ~observe:[ y ] ~faults:[ f ] in
  check "proved statically" true gd.Podem.g_static_untestable;
  (* The proof must agree with the full unguided search... *)
  let r, _ =
    Podem.generate nl ~faults:[ f ] ~assignable:[ a ] ~observe:[ y ]
  in
  check "podem agrees" true (r = Podem.Untestable);
  (* ...and with exhaustive simulation: activation needs g=1, never
     attainable. *)
  enum_states nl (fun st ->
      if st.(g) = 1 then Alcotest.fail "activation assignment exists");
  (* Guided run short-circuits with the static proof on record. *)
  let rg, e =
    Podem.generate ~guidance:gd nl ~faults:[ f ] ~assignable:[ a ]
      ~observe:[ y ]
  in
  check "guided untestable" true (rg = Podem.Untestable);
  check "static proof recorded" true e.Podem.static_proof;
  check_int "no decisions spent" 0 e.Podem.decisions

let test_guided_matches_unguided () =
  List.iter
    (fun seed ->
      let nl = Netlist_gen.sequential ~seed ~n_pi:4 ~n_dff:3 ~n_gates:14 in
      let assignable, observe = scan_view nl in
      List.iter
        (fun f ->
          let unguided, _ =
            Podem.generate ~backtrack_limit:30 nl ~faults:[ f ] ~assignable
              ~observe
          in
          let guided, _ =
            Podem.generate ~backtrack_limit:30
              ~guidance:(Guidance.provide nl ~observe ~faults:[ f ])
              nl ~faults:[ f ] ~assignable ~observe
          in
          (match (unguided, guided) with
           | Podem.Test _, Podem.Untestable
           | Podem.Untestable, Podem.Test _ ->
             Alcotest.failf "verdict flip on %s" (Fault.to_string nl f)
           | _, Podem.Aborted when unguided <> Podem.Aborted ->
             Alcotest.failf "guided regression on %s" (Fault.to_string nl f)
           | _ -> ());
          match guided with
          | Podem.Test assignment ->
            check "guided test detects" true
              (Podem.check nl ~faults:[ f ] ~assignment ~observe)
          | _ -> ())
        (Fault.collapsed nl))
    [ 7; 77; 777 ]

let test_guidance_cache () =
  Guidance.reset_cache ();
  let nl = Netlist_gen.sequential ~seed:5 ~n_pi:4 ~n_dff:2 ~n_gates:10 in
  let _, observe = scan_view nl in
  let f =
    match Fault.collapsed nl with f :: _ -> f | [] -> assert false
  in
  let g1 = Guidance.provide nl ~observe ~faults:[ f ] in
  let g2 = Guidance.provide nl ~observe ~faults:[ f ] in
  check "cached analyses give identical guidance" true (g1 = g2);
  Guidance.reset_cache ()

(* ------------------------------------------------------------------ *)
(* Lint hooks: the saturated-SCOAP nets behind HFT-L009/L010          *)
(* ------------------------------------------------------------------ *)

let test_lint_saturation_helpers () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let c0 = Netlist.add nl Netlist.Const0 [||] in
  let blocked = Netlist.add nl Netlist.Buf [| a |] in
  let g = Netlist.add nl Netlist.And [| blocked; c0 |] in
  let _y = Netlist.add nl Netlist.Po [| g |] in
  let m = Scoap.analyze nl in
  (* g can never be 1 -> uncontrollable; [blocked]'s only path runs
     through the masked And -> unobservable. *)
  check "g uncontrollable" true
    (List.mem g (Hft_lint.Rules.uncontrollable_nets nl m));
  check "blocked unobservable" true
    (List.mem blocked (Hft_lint.Rules.unobservable_nets nl m));
  (* A clean net trips neither helper. *)
  let nl2 = Netlist.create () in
  let p = Netlist.add nl2 Netlist.Pi [||] in
  let q = Netlist.add nl2 Netlist.Not [| p |] in
  let _y2 = Netlist.add nl2 Netlist.Po [| q |] in
  let m2 = Scoap.analyze nl2 in
  check_int "no uncontrollable" 0
    (List.length (Hft_lint.Rules.uncontrollable_nets nl2 m2));
  check_int "no unobservable" 0
    (List.length (Hft_lint.Rules.unobservable_nets nl2 m2))

let () =
  Alcotest.run "hft_analysis"
    [
      ( "dominators",
        [
          Alcotest.test_case "fanout-free chain" `Quick test_dom_fanout_free;
          Alcotest.test_case "reconvergent diamond" `Quick
            test_dom_reconvergent;
          Alcotest.test_case "unobservable gate" `Quick test_dom_unobservable;
          Alcotest.test_case "fig1b brute force" `Quick
            (test_dom_bruteforce Hft_core.Fig1_exp.B);
          Alcotest.test_case "fig1c brute force" `Quick
            (test_dom_bruteforce Hft_core.Fig1_exp.C);
        ] );
      ( "implications",
        [
          Alcotest.test_case "direct gate edges" `Quick test_impl_direct;
          Alcotest.test_case "sound vs exhaustive" `Quick
            test_impl_sound_random;
          Alcotest.test_case "constant contradiction" `Quick
            test_impl_constant_contradiction;
        ] );
      ( "guidance",
        [
          Alcotest.test_case "static untestable" `Quick test_static_untestable;
          Alcotest.test_case "guided matches unguided" `Quick
            test_guided_matches_unguided;
          Alcotest.test_case "analysis cache" `Quick test_guidance_cache;
        ] );
      ( "lint_saturation",
        [
          Alcotest.test_case "L009/L010 helpers" `Quick
            test_lint_saturation_helpers;
        ] );
    ]
