open Hft_cdfg
open Hft_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let resources =
  [ (Op.Multiplier, 2); (Op.Alu, 2); (Op.Comparator, 1); (Op.Logic_unit, 1) ]

let sched_of g = Hft_hls.List_sched.schedule g ~resources

(* ------------------------------------------------------------------ *)
(* Scan_vars                                                          *)
(* ------------------------------------------------------------------ *)

let test_scan_vars_break_all () =
  List.iter
    (fun name ->
      let g = Bench_suite.by_name name in
      let sched = sched_of g in
      List.iter
        (fun (tag, sel) ->
          check
            (Printf.sprintf "%s/%s breaks all loops" name tag)
            true
            (Scan_vars.breaks_all g sel.Scan_vars.scan_vars))
        [ ("mfvs", Scan_vars.select_mfvs g sched);
          ("effective", Scan_vars.select_effective g sched);
          ("boundary", Scan_vars.select_boundary g sched) ])
    [ "diffeq"; "ewf"; "iir4"; "ar_lattice" ]

let test_scan_vars_sharing_helps () =
  (* The effectiveness selector never needs more scan registers than
     the vertex-minimal baseline on the benchmark suite. *)
  List.iter
    (fun name ->
      let g = Bench_suite.by_name name in
      let sched = sched_of g in
      let mfvs = Scan_vars.select_mfvs g sched in
      let eff = Scan_vars.select_effective g sched in
      check
        (Printf.sprintf "%s: effective (%d regs) <= mfvs (%d regs)" name
           eff.Scan_vars.n_scan_registers mfvs.Scan_vars.n_scan_registers)
        true
        (eff.Scan_vars.n_scan_registers <= mfvs.Scan_vars.n_scan_registers))
    [ "diffeq"; "ewf"; "iir4"; "ar_lattice" ]

let test_scan_vars_acyclic_graph_empty () =
  let g = Bench_suite.tseng () in
  let sched = sched_of g in
  let sel = Scan_vars.select_effective g sched in
  check_int "no loops, no scan" 0 (List.length sel.Scan_vars.scan_vars);
  check_int "no scan registers" 0 sel.Scan_vars.n_scan_registers

(* ------------------------------------------------------------------ *)
(* Io_reg_assign                                                      *)
(* ------------------------------------------------------------------ *)

let test_io_assign_improves () =
  List.iter
    (fun name ->
      let g = Bench_suite.by_name name in
      let sched = sched_of g in
      let conv = Io_reg_assign.assign_conventional g sched in
      let io = Io_reg_assign.assign g sched in
      check
        (Printf.sprintf "%s: io regs %d >= conventional %d" name
           io.Io_reg_assign.n_io_registers conv.Io_reg_assign.n_io_registers)
        true
        (io.Io_reg_assign.n_io_registers >= conv.Io_reg_assign.n_io_registers);
      check (name ^ ": register count close") true
        (io.Io_reg_assign.n_registers <= conv.Io_reg_assign.n_registers + 2))
    [ "tseng"; "diffeq"; "ewf"; "fir8" ]

let test_io_assign_valid () =
  let g = Bench_suite.ewf () in
  let sched = sched_of g in
  let io = Io_reg_assign.assign g sched in
  let info = Lifetime.compute g sched in
  Hft_hls.Reg_alloc.validate g info io.Io_reg_assign.alloc

(* ------------------------------------------------------------------ *)
(* Sim_sched_assign — including the paper's Figure 1                  *)
(* ------------------------------------------------------------------ *)

let test_fig1_loop_avoidance () =
  let g = Paper_fig1.graph () in
  (* The paper's (b) binding creates an assignment loop; the
     loop-aware binder under the same 2-adder constraint finds a
     loop-free binding like (c). *)
  let sched_b = Paper_fig1.schedule_b g in
  let binding_b = Hft_hls.Fu_bind.of_class_indices g sched_b Paper_fig1.binding_b in
  check "paper binding (b) has an assignment loop" true
    (Sim_sched_assign.assignment_loops g binding_b > 0);
  let sched_c = Paper_fig1.schedule_c g in
  let binding_c = Hft_hls.Fu_bind.of_class_indices g sched_c Paper_fig1.binding_c in
  check_int "paper binding (c) is loop-free" 0
    (Sim_sched_assign.assignment_loops g binding_c);
  let r = Sim_sched_assign.run ~resources:[ (Op.Alu, 2) ] g None in
  check_int "loop-aware binder avoids the loop" 0
    r.Sim_sched_assign.est_assignment_loops;
  Hft_hls.Fu_bind.validate g r.Sim_sched_assign.sched r.Sim_sched_assign.binding

let test_ssa_no_worse_than_conventional () =
  List.iter
    (fun name ->
      let g = Bench_suite.by_name name in
      let conv = Sim_sched_assign.conventional ~resources g in
      let aware = Sim_sched_assign.run ~resources g None in
      check
        (Printf.sprintf "%s: aware loops %d <= conventional %d" name
           aware.Sim_sched_assign.est_assignment_loops
           conv.Sim_sched_assign.est_assignment_loops)
        true
        (aware.Sim_sched_assign.est_assignment_loops
         <= conv.Sim_sched_assign.est_assignment_loops))
    [ "tseng"; "diffeq"; "ewf"; "iir4" ]

(* ------------------------------------------------------------------ *)
(* Controller DFT                                                     *)
(* ------------------------------------------------------------------ *)

let test_controller_dft_reduces_implications () =
  let g = Bench_suite.diffeq () in
  let r = Flow.synthesize_conventional ~width:4 g in
  let rep = Controller_dft.harden r.Flow.datapath in
  check "implications reduced" true
    (rep.Controller_dft.implications_after
     < rep.Controller_dft.implications_before);
  check "few vectors" true (rep.Controller_dft.extra_vectors <= 8)

(* ------------------------------------------------------------------ *)
(* Behav_mod                                                          *)
(* ------------------------------------------------------------------ *)

let test_behav_mod_test_statements () =
  let b = Builder.create "hard" in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let s = Builder.binop b Op.Add x y ~name:"s" in
  let c = Builder.binop b Op.Lt s y ~name:"c" in
  Builder.mark_output b c;
  let g = Builder.finish b in
  let rep = Behav_mod.add_test_statements g in
  check "hard before" true (rep.Behav_mod.hard_before > 0);
  check_int "no hard after" 0 rep.Behav_mod.hard_after;
  (* Behaviour itself unchanged on the original outputs. *)
  let rng = Hft_util.Rng.create 1 in
  check "behaviour preserved" true
    (Transform.equivalent ~width:8 ~trials:30 rng g rep.Behav_mod.graph)

let test_deflection_flow () =
  let g = Bench_suite.ar_lattice () in
  let rep =
    Behav_mod.deflect_for_scan_sharing ~max_tries:4
      ~resources:[ (Op.Multiplier, 2); (Op.Alu, 2) ] g
  in
  check "scan regs never increase" true
    (rep.Behav_mod.scan_regs_after <= rep.Behav_mod.scan_regs_before);
  (* When deflections were applied, behaviour is preserved. *)
  if rep.Behav_mod.deflections > 0 then begin
    let rng = Hft_util.Rng.create 2 in
    check "behaviour preserved" true
      (Transform.equivalent ~width:8 ~trials:20 rng g rep.Behav_mod.graph_defl)
  end

(* ------------------------------------------------------------------ *)
(* Hier_test                                                          *)
(* ------------------------------------------------------------------ *)

let test_justify_simple () =
  let g = Bench_suite.tseng () in
  let t1 = Graph.var_by_name g "t1" in
  (match Hier_test.justify ~width:8 g ~wanted:[ (t1, 42) ] with
   | None -> Alcotest.fail "t1 should be justifiable (i1 + i2)"
   | Some pis ->
     let all =
       List.map
         (fun v ->
           match List.assoc_opt v.Graph.v_name pis with
           | Some x -> (v.Graph.v_name, x)
           | None -> (v.Graph.v_name, 0))
         (Graph.inputs g)
     in
     let r = Graph.run ~width:8 g ~inputs:all () in
     check_int "t1 = 42" 42 (Graph.value_of g r "t1"))

let test_justify_conflict_detected () =
  (* s = x + y, p = s * s: wanting s = 3 and s = 4 simultaneously is
     impossible. *)
  let b = Builder.create "conflict" in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let s = Builder.binop b Op.Add x y ~name:"s" in
  let p = Builder.binop b Op.Mul s s ~name:"p" in
  Builder.mark_output b p;
  let g = Builder.finish b in
  check "conflicting demands rejected" true
    (Hier_test.justify ~width:8 g ~wanted:[ (s, 3); (s, 4) ] = None)

let test_environment_and_compose () =
  (* diffeq's m6 = u * dx feeds yl = y + m6 with y justifiable to 0,
     and yl is a primary output: a textbook test environment. *)
  let g = Bench_suite.diffeq () in
  let m6_op =
    match Graph.producer g (Graph.var_by_name g "m6") with
    | Some o -> o.Graph.o_id
    | None -> Alcotest.fail "no producer"
  in
  match Hier_test.environment ~width:8 g m6_op with
  | None -> Alcotest.fail "m6 should have a test environment"
  | Some env ->
    let pairs = [ (3, 5); (7, 9); (0, 1); (13, 2) ] in
    let c = Hier_test.compose ~width:8 g env pairs in
    check_int "all vectors translated" (List.length pairs)
      c.Hier_test.vectors_translated;
    check_int "all vectors confirmed" (List.length pairs)
      c.Hier_test.vectors_confirmed

let test_environment_absent_when_unjustifiable () =
  (* tseng's t5 = t3 * t4: justifying t3 and t4 simultaneously needs
     i1 = 0 (for t4's Or) and i1 = a (for t3's chain) — impossible, so
     no environment may be claimed. *)
  let g = Bench_suite.tseng () in
  let t5_op =
    match Graph.producer g (Graph.var_by_name g "t5") with
    | Some o -> o.Graph.o_id
    | None -> Alcotest.fail "no producer"
  in
  check "t5 has no (validated) environment" true
    (Hier_test.environment ~width:8 g t5_op = None)

let prop_justify_really_justifies =
  QCheck.Test.make ~name:"justify bindings achieve the requested value"
    ~count:80
    QCheck.(pair (int_bound 100000) (int_bound 255))
    (fun (seed, value) ->
      let rng = Hft_util.Rng.create seed in
      let g = Bench_suite.random rng ~n_inputs:4 ~n_ops:10 ~p_feedback:0.0 in
      (* Pick any intermediate variable and try to justify it. *)
      let nv = Graph.n_vars g in
      let v = Hft_util.Rng.int rng nv in
      match (Graph.var g v).Graph.v_kind with
      | Graph.V_const _ -> true
      | _ ->
        (match Hier_test.justify ~width:8 g ~wanted:[ (v, value) ] with
         | None -> true (* unjustifiable is a legal answer *)
         | Some pis ->
           let all =
             List.map
               (fun inp ->
                 match List.assoc_opt inp.Graph.v_name pis with
                 | Some x -> (inp.Graph.v_name, x)
                 | None -> (inp.Graph.v_name, 0))
               (Graph.inputs g)
           in
           let r = Graph.run ~width:8 g ~inputs:all () in
           List.assoc v r land 0xFF = value land 0xFF))

let test_coverage_repair () =
  let g = Bench_suite.diffeq () in
  let sched = sched_of g in
  let binding = Hft_hls.Fu_bind.left_edge ~resources g sched in
  let covered, uncovered = Hier_test.covered_instances ~width:8 g binding in
  check "some instances covered" true (List.length covered > 0);
  if uncovered <> [] then begin
    let g', points = Hier_test.ensure_coverage ~width:8 g binding in
    check "points added" true (points > 0);
    let _, uncovered' = Hier_test.covered_instances ~width:8 g' binding in
    check "coverage improved" true
      (List.length uncovered' < List.length uncovered)
  end

(* ------------------------------------------------------------------ *)
(* Flows                                                              *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Pattern store                                                      *)
(* ------------------------------------------------------------------ *)

let test_pattern_store () =
  let ps = Pattern_store.create () in
  check_int "empty" 0 (Pattern_store.size ps);
  Pattern_store.add ps [| true; false |];
  Pattern_store.add ps [| false; true; true |];
  check_int "two rows" 2 (Pattern_store.size ps);
  let rows = Pattern_store.patterns ps in
  check "insertion order" true
    (rows.(0) = [| true; false |] && rows.(1) = [| false; true; true |]);
  (* Fitting: truncate/zero-pad to width, then random fill to n_min. *)
  let rng = Hft_util.Rng.create 9 in
  let p = Pattern_store.padded ps ~rng ~n_min:10 ~width:2 in
  check "at least n_min rows" true (Array.length p >= 10);
  check "stored rows lead" true
    (p.(0) = [| true; false |] && p.(1) = [| false; true |]);
  Array.iter (fun row -> check_int "uniform width" 2 (Array.length row)) p;
  let wide = Pattern_store.padded ps ~rng ~n_min:2 ~width:4 in
  check "zero padding" true (wide.(0) = [| true; false; false; false |])

let test_flows_run_everywhere () =
  List.iter
    (fun (name, g) ->
      let conv = Flow.synthesize_conventional ~width:4 g in
      check (name ^ " conventional no overhead") true
        (abs_float conv.Flow.report.Flow.area_overhead < 1e-9);
      let ps = Flow.synthesize_for_partial_scan ~width:4 g in
      check_int (name ^ " partial scan: loop-free") 0
        ps.Flow.report.Flow.datapath_loops;
      let bist = Flow.synthesize_for_bist ~width:4 g in
      check (name ^ " bist has test registers") true
        (bist.Flow.report.Flow.n_test_registers > 0);
      check (name ^ " bist sessions >= 1") true
        (bist.Flow.report.Flow.test_sessions >= 1))
    (Bench_suite.all ())

let test_flow_datapaths_still_correct () =
  let rng = Hft_util.Rng.create 77 in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (tag, r) ->
          check
            (Printf.sprintf "%s/%s datapath equivalent" name tag)
            true
            (Hft_hls.Datapath_gen.check_against_behaviour ~width:4 ~trials:10
               rng g r.Flow.datapath))
        [ ("conv", Flow.synthesize_conventional ~width:4 g);
          ("scan", Flow.synthesize_for_partial_scan ~width:4 g);
          ("bist", Flow.synthesize_for_bist ~width:4 g) ])
    (Bench_suite.all ())

let prop_flows_on_random_cdfgs =
  QCheck.Test.make ~name:"all flows sound on random CDFGs" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Hft_util.Rng.create seed in
      let g =
        Bench_suite.random rng ~n_inputs:4 ~n_ops:12 ~p_feedback:0.25
      in
      let conv = Flow.synthesize_conventional ~width:4 g in
      let ps = Flow.synthesize_for_partial_scan ~width:4 g in
      let bist = Flow.synthesize_for_bist ~width:4 g in
      (* Partial scan always ends loop-free; all three datapaths remain
         behaviourally correct. *)
      ps.Flow.report.Flow.datapath_loops = 0
      && List.for_all
           (fun r ->
             Hft_hls.Datapath_gen.check_against_behaviour ~width:4 ~trials:5
               rng g r.Flow.datapath)
           [ conv; ps; bist ])

(* ------------------------------------------------------------------ *)
(* Failure injection: the checkers actually catch broken artefacts    *)
(* ------------------------------------------------------------------ *)

let test_injected_datapath_bug_caught () =
  (* Drop one Exec transfer: the equivalence checker must notice. *)
  let g = Bench_suite.tseng () in
  let r = Flow.synthesize_conventional ~width:6 g in
  let d = r.Flow.datapath in
  let broken =
    { d with
      Hft_rtl.Datapath.transfers =
        (let dropped = ref false in
         List.filter
           (fun (_, m) ->
             match m with
             | Hft_rtl.Datapath.Exec _ when not !dropped ->
               dropped := true;
               false
             | _ -> true)
           d.Hft_rtl.Datapath.transfers) }
  in
  let rng = Hft_util.Rng.create 99 in
  Alcotest.(check bool) "broken datapath detected" false
    (Hft_hls.Datapath_gen.check_against_behaviour ~width:6 ~trials:20 rng g
       broken)

let test_injected_gate_bug_caught () =
  (* Flip one gate kind in the expansion: gate-vs-RTL comparison must
     fail on some vector. *)
  let g = Bench_suite.tseng () in
  let r = Flow.synthesize_conventional ~width:6 g in
  let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
  let nl = ex.Hft_gate.Expand.netlist in
  (* Find an And gate and rewire it as Or by rebuilding: netlist kinds
     are immutable, so instead swap two fanins of an Xor-feeding gate —
     pick a Mux2 and swap its data inputs. *)
  let mux =
    let found = ref None in
    for v = 0 to Hft_gate.Netlist.n_nodes nl - 1 do
      if !found = None && Hft_gate.Netlist.kind nl v = Hft_gate.Netlist.Mux2
      then found := Some v
    done;
    match !found with Some v -> v | None -> Alcotest.fail "no mux"
  in
  let fi = Hft_gate.Netlist.fanin nl mux in
  let a = fi.(1) and b = fi.(2) in
  if a <> b then begin
    Hft_gate.Netlist.set_fanin nl mux 1 b;
    Hft_gate.Netlist.set_fanin nl mux 2 a;
    let rng = Hft_util.Rng.create 5 in
    let differs = ref false in
    for _ = 1 to 20 do
      let inputs =
        List.map
          (fun v -> (v.Graph.v_name, Hft_util.Rng.int rng 64))
          (Graph.inputs g)
      in
      let rtl_outs, _ = Hft_rtl.Datapath.simulate r.Flow.datapath ~inputs () in
      let gate_outs =
        Hft_gate.Expand.run_iteration r.Flow.datapath ex ~inputs ()
      in
      if List.exists (fun (n, v) -> List.assoc n gate_outs <> v) rtl_outs then
        differs := true
    done;
    Alcotest.(check bool) "swapped mux detected" true !differs
  end

let test_injected_scan_chain_break_caught () =
  (* Cut the chain between two cells: shift integrity must fail. *)
  let g = Bench_suite.tseng () in
  let r = Flow.synthesize_conventional ~width:4 g in
  let ex = Hft_gate.Expand.of_datapath r.Flow.datapath in
  let chain = Hft_scan.Full_scan.insert ex.Hft_gate.Expand.netlist in
  Alcotest.(check bool) "intact chain shifts" true
    (Hft_scan.Chain.verify_shift chain);
  (* Break: make the second cell's scan mux take scan_in instead of the
     first cell's Q. *)
  (match chain.Hft_scan.Chain.cells with
   | _ :: c2 :: _ ->
     let nl = chain.Hft_scan.Chain.netlist in
     let mux = (Hft_gate.Netlist.fanin nl c2).(0) in
     Hft_gate.Netlist.set_fanin nl mux 2 chain.Hft_scan.Chain.scan_in;
     Alcotest.(check bool) "broken chain caught" false
       (Hft_scan.Chain.verify_shift chain)
   | _ -> Alcotest.fail "chain too short")

(* ------------------------------------------------------------------ *)
(* Flight recorder over a real campaign                               *)
(* ------------------------------------------------------------------ *)

let run_fig1_campaign () =
  let g = Paper_fig1.graph () in
  let r = Flow.synthesize ~width:4 Flow.Partial_scan g in
  Flow.test_campaign ~backtrack_limit:20 ~max_frames:2 ~sample:4 ~seed:7
    ~n_patterns:32 r

let test_campaign_waterfall_conserves () =
  Hft_obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Hft_obs.enabled := false;
      Hft_obs.reset ())
  @@ fun () ->
  Hft_obs.with_enabled true @@ fun () ->
  let c = run_fig1_campaign () in
  let waterfall = Hft_obs.Ledger.waterfall () in
  check_int "outcome classes sum to the collapsed total"
    (Hft_obs.Ledger.n_classes ())
    (List.fold_left (fun acc (_, (cl, _)) -> acc + cl) 0 waterfall);
  check_int "outcome faults sum to the sampled total"
    (List.length c.Flow.c_faults)
    (List.fold_left (fun acc (_, (_, fa)) -> acc + fa) 0 waterfall);
  check "campaign resolved every class" true
    (List.assoc_opt "never_targeted" waterfall = Some (0, 0));
  check "dropping happened" true
    (match List.assoc_opt "drop_detected" waterfall with
     | Some (cl, _) -> cl > 0
     | None -> false);
  (* Detected classes name real test ids, and every annotated test maps
     to rows that exist in the campaign's pattern store. *)
  let n_tests = Hft_obs.Ledger.n_tests () in
  check "tests were generated" true (n_tests > 0);
  List.iter
    (fun (row : Hft_obs.Ledger.row) ->
      match row.Hft_obs.Ledger.lr_resolution with
      | Hft_obs.Ledger.Drop_detected { test }
      | Hft_obs.Ledger.Podem_detected { test; _ } ->
        check
          (Printf.sprintf "class %d cites a registered test"
             row.Hft_obs.Ledger.lr_class)
          true
          (test >= 0 && test < n_tests)
      | _ -> ())
    (Hft_obs.Ledger.rows ());
  List.iter
    (fun (t : Hft_obs.Ledger.test) ->
      match t.Hft_obs.Ledger.lt_rows with
      | Some (first, n) ->
        check
          (Printf.sprintf "test %d rows inside the pattern store"
             t.Hft_obs.Ledger.lt_id)
          true
          (first >= 0 && n > 0 && first + n <= c.Flow.c_patterns_stored)
      | None ->
        Alcotest.failf "test %d has no pattern-store rows"
          t.Hft_obs.Ledger.lt_id)
    (Hft_obs.Ledger.tests ())

let test_campaign_unchanged_when_disabled () =
  (* The flight recorder must not perturb the engines: the same campaign
     with observability off yields identical ATPG stats and coverage,
     and records nothing. *)
  Hft_obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Hft_obs.enabled := false;
      Hft_obs.reset ())
  @@ fun () ->
  let on = Hft_obs.with_enabled true run_fig1_campaign in
  let on_waterfall = Hft_obs.Ledger.waterfall () in
  Hft_obs.reset ();
  let off = Hft_obs.with_enabled false run_fig1_campaign in
  check "atpg stats identical with recorder off" true
    (on.Flow.c_atpg = off.Flow.c_atpg);
  check "pattern counts identical" true
    (on.Flow.c_patterns_stored = off.Flow.c_patterns_stored);
  check "fsim coverage identical" true
    (Hft_gate.Fsim.coverage on.Flow.c_fsim
     = Hft_gate.Fsim.coverage off.Flow.c_fsim);
  check "disabled run recorded no metrics" true
    (Hft_obs.Registry.snapshot () = []);
  check_int "disabled run journalled nothing" 0 (Hft_obs.Journal.recorded ());
  check_int "disabled run has no ledger rows" 0 (Hft_obs.Ledger.n_classes ());
  check "enabled run had resolved classes" true
    (List.exists (fun (_, (cl, _)) -> cl > 0) on_waterfall)

(* ------------------------------------------------------------------ *)
(* Tool survey                                                        *)
(* ------------------------------------------------------------------ *)

let test_table1 () =
  check_int "seven tools" 7 (List.length Tool_survey.table1);
  let s = Tool_survey.render () in
  List.iter
    (fun e ->
      let contains needle =
        let nh = String.length s and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
        go 0
      in
      check (e.Tool_survey.vendor ^ " present") true
        (contains e.Tool_survey.vendor))
    Tool_survey.table1

let () =
  Alcotest.run "hft_core"
    [
      ( "scan_vars",
        [
          Alcotest.test_case "break all" `Quick test_scan_vars_break_all;
          Alcotest.test_case "sharing helps" `Quick test_scan_vars_sharing_helps;
          Alcotest.test_case "acyclic empty" `Quick
            test_scan_vars_acyclic_graph_empty;
        ] );
      ( "io_reg_assign",
        [
          Alcotest.test_case "improves" `Quick test_io_assign_improves;
          Alcotest.test_case "valid" `Quick test_io_assign_valid;
        ] );
      ( "sim_sched_assign",
        [
          Alcotest.test_case "figure 1" `Quick test_fig1_loop_avoidance;
          Alcotest.test_case "no worse" `Quick test_ssa_no_worse_than_conventional;
        ] );
      ( "controller_dft",
        [
          Alcotest.test_case "implications" `Quick
            test_controller_dft_reduces_implications;
        ] );
      ( "behav_mod",
        [
          Alcotest.test_case "test statements" `Quick
            test_behav_mod_test_statements;
          Alcotest.test_case "deflection flow" `Quick test_deflection_flow;
        ] );
      ( "hier_test",
        [
          Alcotest.test_case "justify" `Quick test_justify_simple;
          Alcotest.test_case "conflict" `Quick test_justify_conflict_detected;
          Alcotest.test_case "environment+compose" `Quick
            test_environment_and_compose;
          Alcotest.test_case "no bogus environment" `Quick
            test_environment_absent_when_unjustifiable;
          Alcotest.test_case "coverage repair" `Quick test_coverage_repair;
          QCheck_alcotest.to_alcotest prop_justify_really_justifies;
        ] );
      ( "pattern_store",
        [ Alcotest.test_case "store and pad" `Quick test_pattern_store ] );
      ( "flow",
        [
          Alcotest.test_case "flows run" `Quick test_flows_run_everywhere;
          Alcotest.test_case "datapaths correct" `Quick
            test_flow_datapaths_still_correct;
          QCheck_alcotest.to_alcotest prop_flows_on_random_cdfgs;
        ] );
      ( "flight_recorder",
        [
          Alcotest.test_case "waterfall conserves" `Quick
            test_campaign_waterfall_conserves;
          Alcotest.test_case "engines unchanged when disabled" `Quick
            test_campaign_unchanged_when_disabled;
        ] );
      ( "failure_injection",
        [
          Alcotest.test_case "broken datapath caught" `Quick
            test_injected_datapath_bug_caught;
          Alcotest.test_case "broken expansion caught" `Quick
            test_injected_gate_bug_caught;
          Alcotest.test_case "broken scan chain caught" `Quick
            test_injected_scan_chain_break_caught;
        ] );
      ("tool_survey", [ Alcotest.test_case "table 1" `Quick test_table1 ]);
    ]
