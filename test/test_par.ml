(* Hft_par: the multicore ATPG engine's determinism contract.

   The whole point of the domain-pool sharding is that it is invisible
   in the results: coverage, verdicts, test sets, engine counters and
   the fault-forensics waterfall must be bit-identical at any jobs
   count, chaos-killed worker domains included.  These tests pin that
   contract — plus the thread safety of the observability layer the
   workers write through. *)

open Hft_gate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_obs f =
  Hft_obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Hft_obs.enabled := false;
      Hft_obs.reset ())
    (fun () -> Hft_obs.with_enabled true f)

(* ------------------------------------------------------------------ *)
(* Knobs                                                              *)
(* ------------------------------------------------------------------ *)

let test_knobs () =
  check_int "zero clamps to 1" 1 (Hft_par.clamp_jobs 0);
  check_int "negative clamps to 1" 1 (Hft_par.clamp_jobs (-3));
  check_int "in range passes" 4 (Hft_par.clamp_jobs 4);
  check_int "huge clamps to 64" 64 (Hft_par.clamp_jobs 1000);
  Unix.putenv "HFT_JOBS" "6";
  check_int "HFT_JOBS read" 6 (Hft_par.jobs_from_env ());
  Unix.putenv "HFT_JOBS" "banana";
  check_int "garbage falls back to 1" 1 (Hft_par.jobs_from_env ());
  Unix.putenv "HFT_JOBS" "0";
  check_int "non-positive falls back to 1" 1 (Hft_par.jobs_from_env ());
  Unix.putenv "HFT_JOBS" ""

(* ------------------------------------------------------------------ *)
(* Observability layer under concurrent hammering                     *)
(* ------------------------------------------------------------------ *)

(* Four domains hammer the registry, journal and ledger at once; every
   write must land exactly once (lost updates were the failure mode of
   the pre-mutex implementation). *)
let test_obs_hammer () =
  with_obs @@ fun () ->
  let n_dom = 4 and per = 2000 in
  let body () =
    for i = 1 to per do
      Hft_obs.Registry.incr "hft.par.hammer";
      Hft_obs.Registry.observe "hft.par.lat" (float_of_int (i land 7));
      Hft_obs.Journal.record
        (Hft_obs.Journal.Note { key = "hammer"; value = "x" });
      let h = Hft_obs.Ledger.register_class ~rep:"r" ~members:[ "m" ] in
      Hft_obs.Ledger.resolve h
        (Hft_obs.Ledger.Proved_untestable { frames = 1 })
    done
  in
  let others = List.init (n_dom - 1) (fun _ -> Domain.spawn body) in
  body ();
  List.iter Domain.join others;
  check_int "counter increments all land" (n_dom * per)
    (Hft_obs.Registry.count "hft.par.hammer");
  check_int "ledger classes all land" (n_dom * per)
    (Hft_obs.Ledger.n_classes ());
  (* One Note per iteration plus one Class_resolved per resolve. *)
  check_int "journal records all land" (2 * n_dom * per)
    (Hft_obs.Journal.recorded ())

(* ------------------------------------------------------------------ *)
(* Differential harness                                               *)
(* ------------------------------------------------------------------ *)

(* Journal events modulo wall-clock: the tape a parallel run commits
   must be the sequential tape, entry for entry. *)
let event_sig (e : Hft_obs.Journal.entry) =
  let open Hft_obs.Journal in
  match e.e_event with
  | Phase_begin { name } -> "begin " ^ name
  | Phase_end { name; _ } -> "end " ^ name
  | Collapse { faults; classes } ->
    Printf.sprintf "collapse %d %d" faults classes
  | Atpg_target { cls; rep; frames } ->
    Printf.sprintf "target %d %s %d" cls rep frames
  | Podem_result { cls; outcome; frames; backtracks } ->
    Printf.sprintf "podem %d %s %d %d" cls outcome frames backtracks
  | Static_untestable { cls; frames } ->
    Printf.sprintf "static %d %d" cls frames
  | Backtrack { backtracks; decisions; implications } ->
    Printf.sprintf "btk %d %d %d" backtracks decisions implications
  | Test_generated { test; frames } -> Printf.sprintf "test %d %d" test frames
  | Fault_dropped { cls; test } -> Printf.sprintf "dropped %d %d" cls test
  | Class_resolved { cls; outcome; faults } ->
    Printf.sprintf "resolved %d %s %d" cls outcome faults
  | Fsim_run { faults; detected; patterns; events } ->
    Printf.sprintf "fsim %d %d %d %d" faults detected patterns events
  | Retry { site; attempt; budget } ->
    Printf.sprintf "retry %s %d %d" site attempt budget
  | Degraded { site; action } -> Printf.sprintf "degraded %s %s" site action
  | Checkpoint { classes; tests } -> Printf.sprintf "ckpt %d %d" classes tests
  | Note { key; value } -> Printf.sprintf "note %s %s" key value
  | Shard_stats { jobs; tasks; _ } ->
    (* Jobs-varying by nature (recorded once per campaign by the flow,
       never by the engines), so it can never appear on an engine tape —
       the differential tests below would rightly fail if it did. *)
    Printf.sprintf "shard-stats %d %d" jobs tasks

type fingerprint = {
  fp_stats : Seq_atpg.stats;
  fp_waterfall : string;
  fp_backtracks : int;
  fp_events : int;
  fp_unrolls : int;
  fp_retries : int;
  fp_tests : (int * bool array array * bool array) list;
  fp_journal : string list;
}

let seq_fingerprint ?on_par_stats ~jobs nl ~faults ~scanned =
  with_obs @@ fun () ->
  let tests = ref [] in
  let stats =
    Seq_atpg.run ~backtrack_limit:30 ~max_frames:3 ~jobs ?on_par_stats
      ~on_test:(fun t ->
        tests :=
          (t.Seq_atpg.t_frames, t.Seq_atpg.t_pi_vectors,
           t.Seq_atpg.t_scan_state)
          :: !tests)
      nl ~faults ~scanned
  in
  {
    fp_stats = stats;
    fp_waterfall = Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ());
    fp_backtracks = Hft_obs.Registry.count "hft.podem.backtracks";
    fp_events = Hft_obs.Registry.count "hft.fsim.events";
    fp_unrolls = Hft_obs.Registry.count "hft.seq_atpg.unrolls";
    fp_retries = Hft_obs.Registry.count "hft.robust.retries";
    fp_tests = List.rev !tests;
    fp_journal = List.map event_sig (Hft_obs.Journal.entries ());
  }

let check_identical tag base fp =
  check (tag ^ ": stats") true (fp.fp_stats = base.fp_stats);
  Alcotest.(check string)
    (tag ^ ": waterfall") base.fp_waterfall fp.fp_waterfall;
  check_int (tag ^ ": podem backtracks") base.fp_backtracks fp.fp_backtracks;
  check_int (tag ^ ": fsim events") base.fp_events fp.fp_events;
  check_int (tag ^ ": unrolls") base.fp_unrolls fp.fp_unrolls;
  check_int (tag ^ ": retries") base.fp_retries fp.fp_retries;
  check (tag ^ ": test set") true (fp.fp_tests = base.fp_tests);
  Alcotest.(check (list string))
    (tag ^ ": journal tape") base.fp_journal fp.fp_journal

(* Sequential ATPG on seeded random circuits: -j2/-j4 must reproduce
   the -j1 run bit for bit, journal tape included. *)
let test_seq_differential () =
  List.iter
    (fun seed ->
      let nl = Netlist_gen.sequential ~seed ~n_pi:4 ~n_dff:3 ~n_gates:14 in
      let faults = Fault.collapsed nl in
      let scanned =
        List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl)
      in
      let base = seq_fingerprint ~jobs:1 nl ~faults ~scanned in
      check ("seed " ^ string_of_int seed ^ ": campaign nonempty") true
        (base.fp_stats.Seq_atpg.total > 0);
      List.iter
        (fun jobs ->
          let fp = seq_fingerprint ~jobs nl ~faults ~scanned in
          check_identical
            (Printf.sprintf "seed %d -j%d" seed jobs)
            base fp)
        [ 2; 4 ])
    [ 1; 2; 3 ]

(* Full-scan combinational ATPG on the paper's Figure 1 data paths:
   same contract on the second parallel engine. *)
let test_full_scan_differential () =
  List.iter
    (fun (name, which) ->
      (* [Full_scan.atpg] ends by inserting the scan chain (a netlist
         mutation), so every run gets a freshly expanded netlist. *)
      let run jobs =
        with_obs @@ fun () ->
        let _, d = Hft_core.Fig1_exp.datapath which in
        let nl = (Expand.of_datapath d).Expand.netlist in
        let faults = Fault.collapsed nl in
        let r = Hft_scan.Full_scan.atpg ~backtrack_limit:50 ~jobs nl ~faults in
        ( r.Hft_scan.Full_scan.stats,
          r.Hft_scan.Full_scan.tests,
          Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ()),
          Hft_obs.Registry.count "hft.podem.backtracks",
          List.map event_sig (Hft_obs.Journal.entries ()) )
      in
      let s1, t1, w1, b1, j1 = run 1 in
      List.iter
        (fun jobs ->
          let s, t, w, b, j = run jobs in
          let tag = Printf.sprintf "%s -j%d" name jobs in
          check (tag ^ ": stats") true (s = s1);
          check (tag ^ ": test set") true (t = t1);
          Alcotest.(check string) (tag ^ ": waterfall") w1 w;
          check_int (tag ^ ": backtracks") b1 b;
          Alcotest.(check (list string)) (tag ^ ": journal tape") j1 j)
        [ 2; 4 ])
    [ ("fig1b", Hft_core.Fig1_exp.B); ("fig1c", Hft_core.Fig1_exp.C) ]

(* ------------------------------------------------------------------ *)
(* Chaos: killed worker domains degrade, never diverge                *)
(* ------------------------------------------------------------------ *)

(* With the Shard site firing on every check, every speculation dies
   and the orchestrator recomputes each class inline — the campaign
   must degrade (visible in the journal) and still land on the -j1
   results exactly. *)
let test_shard_chaos () =
  let nl = Netlist_gen.sequential ~seed:5 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let faults = Fault.collapsed nl in
  let scanned = List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl) in
  let base = seq_fingerprint ~jobs:1 nl ~faults ~scanned in
  let degraded = ref 0 in
  let fp =
    Hft_robust.Chaos.with_config
      {
        Hft_robust.Chaos.seed = 3;
        prob = 1.0;
        sites = [ Hft_robust.Chaos.Shard ];
        arm_after = 0;
      }
      (fun () ->
        let fp = seq_fingerprint ~jobs:4 nl ~faults ~scanned in
        degraded :=
          List.length
            (List.filter
               (fun s -> s = "degraded shard sequential-fallback")
               fp.fp_journal);
        fp)
  in
  check "some shards were killed" true (!degraded > 0);
  (* Everything but the journal (which legitimately carries the
     Degraded breadcrumbs) must match the clean sequential run. *)
  check "chaos: stats" true (fp.fp_stats = base.fp_stats);
  Alcotest.(check string) "chaos: waterfall" base.fp_waterfall fp.fp_waterfall;
  check_int "chaos: podem backtracks" base.fp_backtracks fp.fp_backtracks;
  check_int "chaos: fsim events" base.fp_events fp.fp_events;
  check_int "chaos: unrolls" base.fp_unrolls fp.fp_unrolls;
  check "chaos: test set" true (fp.fp_tests = base.fp_tests);
  check "chaos: non-degraded tape preserved" true
    (List.filter (fun s -> s <> "degraded shard sequential-fallback")
       fp.fp_journal
     = base.fp_journal);
  (* And a clean -j1 run under the same chaos config is untouched:
     the Shard site only exists inside pool worker bodies. *)
  let seq_under_chaos =
    Hft_robust.Chaos.with_config
      {
        Hft_robust.Chaos.seed = 3;
        prob = 1.0;
        sites = [ Hft_robust.Chaos.Shard ];
        arm_after = 0;
      }
      (fun () -> seq_fingerprint ~jobs:1 nl ~faults ~scanned)
  in
  check_identical "sequential under shard chaos" base seq_under_chaos

(* Nested chaos: a Shard-site kill whose inline recompute then hits
   Podem-site injections.  The orchestrator's fallback path runs the
   full supervised PODEM — so the -j4 run must land exactly on the -j1
   [Podem]-only run: same stats, waterfall, tests, and the same
   hft.robust.retries count (the dead worker's half-done attempts are
   discarded with its telemetry, never double-counted), with the only
   extra journal content being the Degraded shard breadcrumbs. *)
let test_nested_shard_podem_chaos () =
  let nl = Netlist_gen.sequential ~seed:5 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let faults = Fault.collapsed nl in
  let scanned = List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl) in
  let chaos sites f =
    Hft_robust.Chaos.with_config
      { Hft_robust.Chaos.seed = 3; prob = 1.0; sites; arm_after = 0 }
      f
  in
  (* prob 1.0 makes every armed check trip, so which checks fire does
     not depend on the shared chaos RNG's draw order across domains. *)
  let base =
    chaos [ Hft_robust.Chaos.Podem ] (fun () ->
        seq_fingerprint ~jobs:1 nl ~faults ~scanned)
  in
  check "podem chaos exercises the retry ladder" true (base.fp_retries > 0);
  let fp =
    chaos [ Hft_robust.Chaos.Shard; Hft_robust.Chaos.Podem ] (fun () ->
        seq_fingerprint ~jobs:4 nl ~faults ~scanned)
  in
  let degraded =
    List.length
      (List.filter
         (fun s -> s = "degraded shard sequential-fallback")
         fp.fp_journal)
  in
  check "shards were killed around the podem injections" true (degraded > 0);
  check "nested chaos: stats" true (fp.fp_stats = base.fp_stats);
  Alcotest.(check string)
    "nested chaos: waterfall" base.fp_waterfall fp.fp_waterfall;
  check "nested chaos: test set" true (fp.fp_tests = base.fp_tests);
  check_int "nested chaos: retries not double-counted" base.fp_retries
    fp.fp_retries;
  check "nested chaos: tape = base tape + Degraded breadcrumbs" true
    (List.filter (fun s -> s <> "degraded shard sequential-fallback")
       fp.fp_journal
     = base.fp_journal)

(* ------------------------------------------------------------------ *)
(* Scheduler telemetry: conservation laws and observationality        *)
(* ------------------------------------------------------------------ *)

(* The stats record is an accounting instrument, so it obeys accounting
   identities: every committed class is attributed to exactly one
   worker, every dispatched task lands in exactly one of
   hit/miss/inline, and no worker reports more time than the campaign
   had. *)
let check_stats_laws tag ~classes (s : Hft_par.Stats.t) =
  let open Hft_par.Stats in
  let sum f = Array.fold_left (fun a w -> a + f w) 0 s.s_workers in
  check_int (tag ^ ": worker count") s.s_jobs (Array.length s.s_workers);
  check_int
    (tag ^ ": class attribution conserves (sum w_classes = classes)")
    classes
    (sum (fun w -> w.w_classes));
  check_int
    (tag ^ ": task bucketing conserves (hits + misses + inline = tasks)")
    s.s_tasks
    (spec_hits s + spec_misses s + inline s);
  (* Steal symmetry: every steal has a victim. *)
  check_int (tag ^ ": steal symmetry") (sum (fun w -> w.w_steals))
    (sum (fun w -> w.w_stolen));
  (* Time budget: per worker, busy + idle + stall cannot exceed the
     campaign wall clock (10% + 5ms tolerance for clock jitter — idle
     is derived from two different clock reads than busy). *)
  let budget = int_of_float (1.1 *. float_of_int s.s_wall_ns) + 5_000_000 in
  Array.iter
    (fun w ->
      check
        (Printf.sprintf "%s: worker %d time budget" tag w.w_domain)
        true
        (w.w_busy_ns + w.w_idle_ns + w.w_stall_ns <= budget))
    s.s_workers;
  check (tag ^ ": utilization in [0,1]") true
    (utilization s >= 0.0 && utilization s <= 1.1);
  check (tag ^ ": occupancy in [0,1]") true
    (occupancy s >= 0.0 && occupancy s <= 1.0)

let test_stats_conservation () =
  let nl = Netlist_gen.sequential ~seed:2 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let faults = Fault.collapsed nl in
  let scanned = List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl) in
  List.iter
    (fun jobs ->
      let captured = ref None in
      let classes =
        with_obs @@ fun () ->
        let _ : Seq_atpg.stats =
          Seq_atpg.run ~backtrack_limit:30 ~max_frames:3 ~jobs
            ~on_par_stats:(fun s -> captured := Some s)
            nl ~faults ~scanned
        in
        Hft_obs.Ledger.n_classes ()
      in
      match !captured with
      | None -> Alcotest.fail (Printf.sprintf "-j%d: no stats reported" jobs)
      | Some s ->
        let tag = Printf.sprintf "seq -j%d" jobs in
        check_int (tag ^ ": jobs") jobs s.Hft_par.Stats.s_jobs;
        check_stats_laws tag ~classes s;
        if jobs = 1 then begin
          (* Degenerate sequential summary: one fully-busy worker. *)
          check (tag ^ ": sequential utilization is 1") true
            (Hft_par.Stats.utilization s = 1.0);
          check_int (tag ^ ": sequential has no tasks") 0
            s.Hft_par.Stats.s_tasks
        end
        else
          check (tag ^ ": parallel run dispatched tasks") true
            (s.Hft_par.Stats.s_tasks > 0))
    [ 1; 2; 4 ]

(* Same laws on the second engine (full-scan commits every chunk class,
   dropped ones included, so its task accounting is the trickier one). *)
let test_full_scan_stats () =
  let captured = ref None in
  let classes =
    with_obs @@ fun () ->
    let _, d = Hft_core.Fig1_exp.datapath Hft_core.Fig1_exp.B in
    let nl = (Expand.of_datapath d).Expand.netlist in
    let faults = Fault.collapsed nl in
    let _ : Hft_scan.Full_scan.result =
      Hft_scan.Full_scan.atpg ~backtrack_limit:50 ~jobs:4
        ~on_par_stats:(fun s -> captured := Some s)
        nl ~faults
    in
    Hft_obs.Ledger.n_classes ()
  in
  match !captured with
  | None -> Alcotest.fail "full-scan: no stats reported"
  | Some s -> check_stats_laws "full-scan -j4" ~classes s

(* Telemetry is observational: collecting it must not move a single
   bit of the campaign's results, journal tape included. *)
let test_stats_observational () =
  let nl = Netlist_gen.sequential ~seed:4 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let faults = Fault.collapsed nl in
  let scanned = List.filteri (fun i _ -> i mod 2 = 0) (Netlist.dffs nl) in
  List.iter
    (fun jobs ->
      let base = seq_fingerprint ~jobs nl ~faults ~scanned in
      let fp =
        seq_fingerprint ~on_par_stats:(fun _ -> ()) ~jobs nl ~faults ~scanned
      in
      check_identical (Printf.sprintf "stats on vs off -j%d" jobs) base fp)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* End-to-end: the campaign entry point                               *)
(* ------------------------------------------------------------------ *)

(* Flow.test_campaign with ~jobs — the path the CLI exercises — must
   agree with the sequential campaign on coverage and waterfall. *)
let test_campaign_jobs () =
  let g = Hft_cdfg.Paper_fig1.graph () in
  let r = Hft_core.Flow.synthesize ~width:4 Hft_core.Flow.Partial_scan g in
  let run jobs =
    with_obs @@ fun () ->
    let c =
      Hft_core.Flow.test_campaign ~backtrack_limit:20 ~max_frames:2 ~sample:4
        ~seed:7 ~n_patterns:16 ~guided:false ~jobs r
    in
    ( c.Hft_core.Flow.c_atpg,
      Hft_gate.Fsim.coverage c.Hft_core.Flow.c_fsim,
      c.Hft_core.Flow.c_patterns_stored,
      Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ()) )
  in
  let s1, cov1, p1, w1 = run 1 in
  List.iter
    (fun jobs ->
      let s, cov, p, w = run jobs in
      let tag = Printf.sprintf "campaign -j%d" jobs in
      check (tag ^ ": atpg stats") true (s = s1);
      check (tag ^ ": fsim coverage") true (cov = cov1);
      check_int (tag ^ ": patterns stored") p1 p;
      Alcotest.(check string) (tag ^ ": waterfall") w1 w)
    [ 2; 4 ]

let () =
  Alcotest.run "hft_par"
    [
      ( "par",
        [
          Alcotest.test_case "knobs" `Quick test_knobs;
          Alcotest.test_case "obs hammer" `Quick test_obs_hammer;
          Alcotest.test_case "seq differential" `Quick test_seq_differential;
          Alcotest.test_case "full-scan differential" `Quick
            test_full_scan_differential;
          Alcotest.test_case "shard chaos" `Quick test_shard_chaos;
          Alcotest.test_case "nested shard+podem chaos" `Quick
            test_nested_shard_podem_chaos;
          Alcotest.test_case "stats conservation" `Quick
            test_stats_conservation;
          Alcotest.test_case "full-scan stats" `Quick test_full_scan_stats;
          Alcotest.test_case "stats observational" `Quick
            test_stats_observational;
          Alcotest.test_case "campaign jobs" `Quick test_campaign_jobs;
        ] );
    ]
