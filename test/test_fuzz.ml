(* Hft_fuzz: the bandit's bit-exact replay, the minimizer's 1-minimal
   contract, reproducer round-trips, crash-only state rollback, and the
   campaign-level guarantees — determinism, kill-and-resume bit
   identity, and the regression canary re-finding the historical
   seed-4246 unsoundness. *)

open Hft_fuzz
open Hft_gate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tmp_dir () =
  let d = Filename.temp_file "hft_fuzz" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* ------------------------------------------------------------------ *)
(* LinUCB                                                             *)
(* ------------------------------------------------------------------ *)

let test_linucb_replay () =
  (* Same (arm, x, reward) history => bit-identical matrices and the
     same deterministic selections — the property campaign resume
     rests on. *)
  let ctx =
    [| [| 1.0; 0.2; 0.7 |]; [| 1.0; 0.9; 0.1 |]; [| 1.0; 0.5; 0.5 |] |]
  in
  let history =
    [ (0, 1.5); (1, 0.0); (2, 3.0); (2, 0.5); (0, 0.0); (1, 2.0); (2, 1.0) ]
  in
  let replay () =
    let b = Linucb.create ~alpha:1.0 ~d:3 ~arms:3 in
    List.iter (fun (arm, reward) -> Linucb.update b ~arm ~x:ctx.(arm) ~reward)
      history;
    b
  in
  let a = replay () and b = replay () in
  check_str "replayed state is bit-identical"
    (Hft_util.Json.to_string (Linucb.state_json a))
    (Hft_util.Json.to_string (Linucb.state_json b));
  check_int "same selection" (Linucb.select a ~contexts:ctx)
    (Linucb.select b ~contexts:ctx);
  check_int "pulls replayed" 3 (Linucb.pulls a 2)

let test_linucb_explores_then_exploits () =
  (* Orthogonal unit contexts: untouched arms score identically. *)
  let ctx = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let b = Linucb.create ~alpha:1.0 ~d:2 ~arms:2 in
  (* Untouched arms tie; the argmax breaks to the lowest index. *)
  check_int "tie breaks low" 0 (Linucb.select b ~contexts:ctx);
  for _ = 1 to 5 do
    Linucb.update b ~arm:1 ~x:ctx.(1) ~reward:10.0;
    Linucb.update b ~arm:0 ~x:ctx.(0) ~reward:0.0
  done;
  check_int "reward pulls the selection" 1 (Linucb.select b ~contexts:ctx);
  check "score reflects payoff" true
    (Linucb.score b ~arm:1 ~x:ctx.(1) > Linucb.score b ~arm:0 ~x:ctx.(0))

(* ------------------------------------------------------------------ *)
(* Minimizer                                                          *)
(* ------------------------------------------------------------------ *)

let test_minimize_shrinks () =
  let nl = Netlist_gen.sequential ~seed:42 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let has_xor nl' =
    let found = ref false in
    for v = 0 to Netlist.n_nodes nl' - 1 do
      match Netlist.kind nl' v with
      | Netlist.Xor | Netlist.Xnor -> found := true
      | _ -> ()
    done;
    !found
  in
  if has_xor nl then begin
    let valid = ref true in
    let checks = ref 0 in
    let checked nl' =
      incr checks;
      (match Netlist.validate nl' with
       | () -> ()
       | exception _ -> valid := false);
      has_xor nl'
    in
    let reduced, steps = Minimize.reduce ~check:checked nl in
    check "property preserved" true (has_xor reduced);
    check "every candidate was a valid netlist" true !valid;
    check "the oracle was actually consulted" true (!checks > 0);
    check_int "steps reported" !checks steps;
    check "shrunk" true (Netlist.n_nodes reduced < Netlist.n_nodes nl);
    check "interface kept: PIs survive" true
      (List.length (Netlist.pis reduced) = List.length (Netlist.pis nl));
    (* 1-minimal: by construction reduce stops only when no single
       bypass preserves the property (or the step bound trips). *)
    check "still sequentialy well-formed" true
      (match Netlist.comb_order reduced with _ -> true | exception _ -> false)
  end

(* ------------------------------------------------------------------ *)
(* Reproducers                                                        *)
(* ------------------------------------------------------------------ *)

let test_repro_roundtrip () =
  let nl = Netlist_gen.sequential ~seed:7 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let p =
    { Repro.p_fingerprint = Repro.fingerprint ~check:"atpg-diff" ~seed:7
        ~detail:"x";
      p_check = "atpg-diff";
      p_detail = "x";
      p_seed = 7;
      p_canary = false;
      p_arm = "baseline";
      p_trial = 3;
      p_netlist = nl;
      p_original_nodes = Netlist.n_nodes nl;
      p_minimize_steps = 0 }
  in
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Repro.save ~dir p in
  match Repro.load path with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok q ->
    check_str "full document round-trips (names, kinds, fanins, provenance)"
      (Hft_util.Json.to_string (Repro.to_json p))
      (Hft_util.Json.to_string (Repro.to_json q));
    check "metadata survives" true
      (q.Repro.p_fingerprint = p.Repro.p_fingerprint
       && q.Repro.p_seed = 7 && q.Repro.p_arm = "baseline"
       && q.Repro.p_trial = 3 && not q.Repro.p_canary);
    check "sequential loops survive (DFF fixups)" true
      (List.length (Netlist.dffs q.Repro.p_netlist)
       = List.length (Netlist.dffs nl));
    (* Saving again is an atomic overwrite with identical bytes. *)
    let before = In_channel.with_open_bin path In_channel.input_all in
    let _ = Repro.save ~dir p in
    check_str "rewrite is byte-identical" before
      (In_channel.with_open_bin path In_channel.input_all)

let test_repro_rejects_garbage () =
  check "schema mismatch rejected" true
    (match
       Repro.of_json
         (Hft_util.Json.Obj [ ("schema", Hft_util.Json.String "bogus/9") ])
     with
     | Error _ -> true
     | Ok _ -> false);
  check "dangling fanin rejected" true
    (match
       Hft_util.Json.parse
         {|{"schema":"hft-repro/1","fingerprint":"f","check":"c","detail":"d",
            "seed":1,"canary":false,"arm":"a","trial":0,"original_nodes":1,
            "minimize_steps":0,"netlist":{"name":"x","nodes":[
              {"kind":"and","name":"g","fanins":[5,6]}]}}|}
     with
     | Error _ -> false
     | Ok j -> (match Repro.of_json j with Error _ -> true | Ok _ -> false))

(* ------------------------------------------------------------------ *)
(* Crash-only state                                                   *)
(* ------------------------------------------------------------------ *)

let mk_finding ?(fp = "aa") trial =
  { State.s_trial = trial; s_fingerprint = fp; s_check = "atpg-diff";
    s_detail = "d"; s_file = "repro-aa.json"; s_canary = false }

let mk_trial ?(arm = 1) ?(findings = 0) trial =
  { State.t_trial = trial; t_arm = arm; t_reward = 1.5; t_findings = findings;
    t_escalations = 0; t_circuit_seed = 1_000_003 + trial }

let test_state_rollback_and_resume () =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "campaign.state" in
  let meta = [ ("seed", Hft_util.Json.Int 1) ] in
  let w = State.create ~path ~meta in
  State.append_trial w (mk_trial 0);
  State.append_finding w (mk_finding ~fp:"aa" 1);
  State.append_trial w (mk_trial ~findings:1 1);
  (* Trial 2's transaction: a finding lands, the commit marker does
     not — then the process dies mid-write of a third record. *)
  State.append_finding w (mk_finding ~fp:"bb" 2);
  State.close w;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"kind\":\"tri";
  close_out oc;
  (match State.load ~path with
   | Error m -> Alcotest.failf "load failed: %s" m
   | Ok st ->
     check "meta round-trips" true (st.State.meta = meta);
     check_int "only committed trials survive" 2
       (List.length st.State.trials);
     check_int "uncommitted trailing finding rolled back" 1
       (List.length st.State.findings);
     check_str "the committed finding" "aa"
       (List.hd st.State.findings).State.s_fingerprint;
     (* Resume compacts the tape: the torn line and the orphaned
        finding vanish, committed bytes survive. *)
     let w2 = State.resume ~path st in
     State.append_trial w2 (mk_trial ~arm:2 2);
     State.close w2;
     match State.load ~path with
     | Error m -> Alcotest.failf "reload failed: %s" m
     | Ok st2 ->
       check_int "resume continued the trial stream" 3
         (List.length st2.State.trials);
       check "compaction kept the committed finding" true
         (List.map (fun f -> f.State.s_fingerprint) st2.State.findings
          = [ "aa" ]));
  (* Out-of-order trial commits are corruption, not interruption. *)
  let w3 = State.create ~path ~meta in
  State.append_trial w3 (mk_trial 0);
  State.append_trial w3 (mk_trial 2);
  State.close w3;
  check "trial gap is an error" true
    (match State.load ~path with Error _ -> true | Ok _ -> false)

let test_state_dedups_findings () =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "campaign.state" in
  let w = State.create ~path ~meta:[] in
  State.append_finding w (mk_finding ~fp:"aa" 0);
  State.append_trial w (mk_trial ~findings:1 0);
  State.append_finding w (mk_finding ~fp:"aa" 1);
  State.append_trial w (mk_trial ~findings:1 1);
  State.close w;
  match State.load ~path with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok st ->
    check_int "same fingerprint dedups to one finding" 1
      (List.length st.State.findings)

(* ------------------------------------------------------------------ *)
(* Oracle: clean circuits stay clean; the canary bites                *)
(* ------------------------------------------------------------------ *)

let test_oracle_clean_and_canary () =
  (* Seed 1000 is part of the fuzz_smoke battery: all six oracles are
     quiet on it. *)
  let clean = Netlist_gen.sequential ~seed:1000 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let report =
    Hft_obs.with_enabled true (fun () -> Oracle.run ~seed:1000 clean)
  in
  check "clean circuit, clean battery" true (report.Oracle.r_findings = []);
  check_int "no escalations" 0 report.Oracle.r_escalations;
  (* Seed 4246 under the canary (propagation fallbacks off) re-exposes
     the historical unsound-Untestable: naive and drop disagree. *)
  let nl = Netlist_gen.sequential ~seed:4246 ~n_pi:4 ~n_dff:3 ~n_gates:14 in
  let fs, esc =
    Hft_obs.with_enabled true (fun () ->
        Oracle.run_check ~canary:true ~name:"atpg-diff" ~seed:4246 nl)
  in
  check "canary re-finds the seed-4246 disagreement" true (fs <> []);
  check_int "a finding, not a crash" 0 esc;
  check "knob restored after the canary run" true
    !Podem.propagation_fallbacks_enabled;
  (* With the real engine (fallbacks on) the same circuit is quiet —
     the historical bug stays fixed. *)
  let fs_fixed, _ =
    Hft_obs.with_enabled true (fun () ->
        Oracle.run_check ~canary:false ~name:"atpg-diff" ~seed:4246 nl)
  in
  check "fixed engine shows no disagreement" true (fs_fixed = [])

(* ------------------------------------------------------------------ *)
(* Campaign: determinism and kill-and-resume bit identity             *)
(* ------------------------------------------------------------------ *)

let slurp path = In_channel.with_open_bin path In_channel.input_all

let corpus_sig dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, slurp (Filename.concat dir f)))

let run_campaign ~dir ~resume =
  Campaign.run
    { Campaign.default_cfg with
      Campaign.c_seed = 1; c_trials = 9; c_corpus = dir; c_resume = resume }

let test_campaign_deterministic_and_canary () =
  let d1 = tmp_dir () and d2 = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d1; rm_rf d2) @@ fun () ->
  let y1 = run_campaign ~dir:d1 ~resume:false in
  let y2 = run_campaign ~dir:d2 ~resume:false in
  check_int "trials committed" 9 y1.Campaign.y_trials_total;
  check "identical corpora (state tape and reproducers)" true
    (corpus_sig d1 = corpus_sig d2);
  check_str "identical bandit matrices"
    (Hft_util.Json.to_string y1.Campaign.y_bandit)
    (Hft_util.Json.to_string y2.Campaign.y_bandit);
  (* The 9-trial run includes the regression arm's init pull: the
     canary finding must be in the corpus, minimized, and not counted
     as a real (non-canary) alarm. *)
  check "canary finding landed" true (y1.Campaign.y_corpus_size >= 1);
  check_int "no real findings on the reference portfolio" 0
    y1.Campaign.y_real_findings;
  let repro =
    Sys.readdir d1 |> Array.to_list
    |> List.filter (fun f -> f <> Campaign.state_file)
  in
  check "exactly the canary reproducer on disk" true
    (List.length repro >= 1);
  match Repro.load (Filename.concat d1 (List.hd repro)) with
  | Error m -> Alcotest.failf "corpus file unreadable: %s" m
  | Ok p ->
    check "canary-flagged" true p.Repro.p_canary;
    check_int "minimized below the generator's size"
      (Netlist.n_nodes p.Repro.p_netlist |> min p.Repro.p_original_nodes)
      (Netlist.n_nodes p.Repro.p_netlist);
    check "replays" true (Repro.replay p <> [])

let test_campaign_kill_resume_bit_identical () =
  let ref_dir = tmp_dir () and kill_dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ref_dir; rm_rf kill_dir) @@ fun () ->
  let reference = run_campaign ~dir:ref_dir ~resume:false in
  (* Chaos kills the campaign at a state-tape serialisation boundary —
     mid-transaction for trial 7 (the regression arm's finding record
     is the 8th Serialize draw). *)
  let killed =
    match
      Hft_robust.Chaos.with_config
        { Hft_robust.Chaos.seed = 1; prob = 1.0;
          sites = [ Hft_robust.Chaos.Serialize ]; arm_after = 7 }
        (fun () -> run_campaign ~dir:kill_dir ~resume:false)
    with
    | _ -> false
    | exception Hft_robust.Chaos.Injection _ -> true
  in
  check "chaos killed the campaign mid-transaction" true killed;
  let resumed = run_campaign ~dir:kill_dir ~resume:true in
  check "resumed run reports the full campaign" true
    (resumed.Campaign.y_trials_total = reference.Campaign.y_trials_total);
  check "corpus is byte-identical to the uninterrupted run" true
    (corpus_sig ref_dir = corpus_sig kill_dir);
  check_str "bandit trajectory is bit-identical"
    (Hft_util.Json.to_string reference.Campaign.y_bandit)
    (Hft_util.Json.to_string resumed.Campaign.y_bandit);
  check "arm pulls match" true
    (List.map (fun a -> (a.Campaign.as_name, a.Campaign.as_pulls))
       reference.Campaign.y_arms
     = List.map (fun a -> (a.Campaign.as_name, a.Campaign.as_pulls))
         resumed.Campaign.y_arms);
  (* Resuming with a different seed is a typed validation error. *)
  check "seed mismatch rejects the resume" true
    (match
       Campaign.run
         { Campaign.default_cfg with
           Campaign.c_seed = 2; c_trials = 9; c_corpus = kill_dir;
           c_resume = true }
     with
     | _ -> false
     | exception Hft_robust.Validation.Invalid _ -> true);
  (* Resuming a corpus that does not exist is, too. *)
  check "missing state rejects the resume" true
    (match
       Campaign.run
         { Campaign.default_cfg with
           Campaign.c_seed = 1; c_corpus = Filename.concat kill_dir "nope";
           c_resume = true }
     with
     | _ -> false
     | exception Hft_robust.Validation.Invalid _ -> true)

let () =
  Alcotest.run "hft_fuzz"
    [
      ( "linucb",
        [
          Alcotest.test_case "bit-exact replay" `Quick test_linucb_replay;
          Alcotest.test_case "explore/exploit" `Quick
            test_linucb_explores_then_exploits;
        ] );
      ( "minimize",
        [ Alcotest.test_case "shrinks under oracle" `Quick
            test_minimize_shrinks ] );
      ( "repro",
        [
          Alcotest.test_case "roundtrip" `Quick test_repro_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_repro_rejects_garbage;
        ] );
      ( "state",
        [
          Alcotest.test_case "rollback + compaction" `Quick
            test_state_rollback_and_resume;
          Alcotest.test_case "fingerprint dedup" `Quick
            test_state_dedups_findings;
        ] );
      ( "oracle",
        [ Alcotest.test_case "clean battery + canary" `Quick
            test_oracle_clean_and_canary ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic + canary corpus" `Quick
            test_campaign_deterministic_and_canary;
          Alcotest.test_case "kill + resume bit-identical" `Quick
            test_campaign_kill_resume_bit_identical;
        ] );
    ]
