(* Committed fuzz reproducers stay alive: every test/corpus/*.json
   must load, replay (the finding still fires under its recorded
   canary flag), and — for canary reproducers — stay quiet under the
   real engine, proving the historical bug remains fixed. *)

let corpus_dir = "corpus"

let corpus_files () =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat corpus_dir)
  else []

let test_replays path () =
  match Hft_fuzz.Repro.load path with
  | Error m -> Alcotest.failf "unreadable reproducer: %s" m
  | Ok p ->
    Alcotest.(check string)
      "file name matches its fingerprint"
      (Hft_fuzz.Repro.filename p) (Filename.basename path);
    Alcotest.(check bool)
      "minimized form is no larger than the original" true
      (Hft_gate.Netlist.n_nodes p.Hft_fuzz.Repro.p_netlist
       <= p.Hft_fuzz.Repro.p_original_nodes);
    let findings = Hft_fuzz.Repro.replay p in
    Alcotest.(check bool) "finding reproduces" true (findings <> []);
    if p.Hft_fuzz.Repro.p_canary then begin
      (* The canary reproducer documents a *fixed* bug: with the real
         engine (propagation fallbacks on) the same circuit and check
         must be quiet.  If this fires, the historical unsoundness has
         regressed. *)
      let real, _ =
        Hft_obs.with_enabled true (fun () ->
            Hft_fuzz.Oracle.run_check ~canary:false
              ~name:p.Hft_fuzz.Repro.p_check ~seed:p.Hft_fuzz.Repro.p_seed
              p.Hft_fuzz.Repro.p_netlist)
      in
      Alcotest.(check (list string))
        "real engine is quiet (the bug is still fixed)" []
        (List.map
           (fun f -> f.Hft_fuzz.Oracle.f_detail)
           real)
    end

let () =
  let files = corpus_files () in
  if files = [] then failwith "test/corpus is empty: no reproducers to replay";
  Alcotest.run "hft_fuzz_corpus"
    [
      ( "replay",
        List.map
          (fun path ->
            Alcotest.test_case (Filename.basename path) `Quick
              (test_replays path))
          files );
    ]
