open Hft_cdfg
open Hft_gate
open Hft_scan

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_datapath () =
  let g = Bench_suite.diffeq () in
  Hft_hls.Datapath_gen.conventional ~width:4
    ~resources:[ (Op.Multiplier, 2); (Op.Alu, 1); (Op.Comparator, 1) ]
    g

(* ------------------------------------------------------------------ *)
(* Chain                                                              *)
(* ------------------------------------------------------------------ *)

let test_chain_shift_integrity () =
  let d = small_datapath () in
  let ex = Expand.of_datapath d in
  let chain = Full_scan.insert ex.Expand.netlist in
  check "chain shifts correctly" true (Chain.verify_shift chain)

let test_chain_test_cycles () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  let f1 = Netlist.add nl Netlist.Dff [| a |] in
  let f2 = Netlist.add nl Netlist.Dff [| f1 |] in
  let _ = Netlist.add nl Netlist.Po [| f2 |] in
  let chain = Chain.insert nl [ f1; f2 ] in
  (* 3 tests on a 2-cell chain: 3*(2+1) + 2 = 11 cycles. *)
  check_int "test cycles" 11 (Chain.test_cycles chain ~n_tests:3)

let test_chain_rejects_non_dff () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Pi [||] in
  check "non-dff rejected" true
    (match Chain.insert nl [ a ] with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Scan-view fault simulation                                         *)
(* ------------------------------------------------------------------ *)

let test_comb_scan_observes_state_inputs () =
  (* [g = not a] feeds only a DFF: invisible to plain combinational
     fault simulation (no PO in its cone), but the scan capture
     observes f's D input. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let g = Netlist.add nl Netlist.Not [| a |] in
  let f = Netlist.add nl ~name:"f" Netlist.Dff [| g |] in
  let h = Netlist.add nl Netlist.Buf [| f |] in
  let _y = Netlist.add nl ~name:"y" Netlist.Po [| h |] in
  let fault = { Fault.node = g; pin = None; stuck = false } in
  let plain = Fsim.comb nl ~patterns:[| [| false |] |] [ fault ] in
  check_int "invisible without scan" 0 (List.length plain.Fsim.detected);
  (* Pattern row: PI column then the scan load of [f]. *)
  let patterns = [| [| false; false |] |] in
  let naive =
    Fsim.comb_scan ~strategy:Fsim.Naive nl ~scanned:[ f ] ~patterns [ fault ]
  in
  let cone =
    Fsim.comb_scan ~strategy:Fsim.Cone nl ~scanned:[ f ] ~patterns [ fault ]
  in
  check_int "scan capture detects" 1 (List.length naive.Fsim.detected);
  check "strategies agree" true
    (naive.Fsim.detected = cone.Fsim.detected)

(* ------------------------------------------------------------------ *)
(* Full scan ATPG                                                     *)
(* ------------------------------------------------------------------ *)

let test_full_scan_drop_matches_naive () =
  (* Exact equality on a fully-testable block: with no aborts the
     strategies must agree verdict for verdict — dropping only removes
     faults a generated test provably detects, and equivalence class
     members share their representative's verdict. *)
  let blk = Expand.comb_block ~width:4 [ Op.Add ] in
  let nl = blk.Expand.b_netlist in
  (* Register the outputs so the scan view has cells: PO drivers become
     capture points, DFF outputs pseudo PIs — still fully testable. *)
  List.iter
    (fun po ->
      let src = (Netlist.fanin nl po).(0) in
      let f = Netlist.add nl Netlist.Dff [| src |] in
      Netlist.set_fanin nl po 0 f)
    (Netlist.pos nl);
  let faults = Fault.universe nl in
  let naive =
    Full_scan.atpg ~backtrack_limit:5000 ~strategy:Seq_atpg.Naive nl ~faults
  in
  let drop =
    Full_scan.atpg ~backtrack_limit:5000 ~strategy:Seq_atpg.Drop nl ~faults
  in
  check_int "naive aborts none" 0 naive.Full_scan.stats.Atpg_stats.aborted;
  check_int "drop aborts none" 0 drop.Full_scan.stats.Atpg_stats.aborted;
  check_int "detected equal" naive.Full_scan.stats.Atpg_stats.detected
    drop.Full_scan.stats.Atpg_stats.detected;
  check_int "untestable equal" naive.Full_scan.stats.Atpg_stats.untestable
    drop.Full_scan.stats.Atpg_stats.untestable;
  check "drop produces no more tests" true
    (List.length drop.Full_scan.tests <= List.length naive.Full_scan.tests);
  check "drop effort no worse" true
    (drop.Full_scan.stats.Atpg_stats.implications
     <= naive.Full_scan.stats.Atpg_stats.implications)

let test_full_scan_drop_sound_with_aborts () =
  (* On the real datapath a couple of hard faults abort at any sane
     backtrack limit; with aborts present only bounds hold: every fault
     Drop reports detected is truly testable (at most the testable ones
     Naive aborted more), and a Naive detection can only go missing into
     Drop's aborted bucket. *)
  let d = small_datapath () in
  let ex = Expand.of_datapath d in
  let nl = ex.Expand.netlist in
  let rng = Hft_util.Rng.create 21 in
  let faults =
    Fault.collapsed nl |> List.filter (fun _ -> Hft_util.Rng.int rng 20 = 0)
  in
  let naive =
    Full_scan.atpg ~backtrack_limit:300 ~strategy:Seq_atpg.Naive nl ~faults
  in
  let drop =
    Full_scan.atpg ~backtrack_limit:300 ~strategy:Seq_atpg.Drop nl ~faults
  in
  let sn = naive.Full_scan.stats and sd = drop.Full_scan.stats in
  check "upper bound" true
    (sd.Atpg_stats.detected
     <= sn.Atpg_stats.detected + sn.Atpg_stats.aborted);
  check "lower bound" true
    (sd.Atpg_stats.detected >= sn.Atpg_stats.detected - sd.Atpg_stats.aborted);
  check "drop effort no worse" true
    (sd.Atpg_stats.implications <= sn.Atpg_stats.implications)

let test_full_scan_coverage () =
  let d = small_datapath () in
  let ex = Expand.of_datapath d in
  let nl = ex.Expand.netlist in
  let rng = Hft_util.Rng.create 4 in
  (* Sample the fault list to keep runtime in check. *)
  let faults =
    Fault.collapsed nl
    |> List.filter (fun _ -> Hft_util.Rng.int rng 10 = 0)
  in
  let r = Full_scan.atpg ~backtrack_limit:300 nl ~faults in
  check "full-scan efficiency > 95%" true
    (Atpg_stats.efficiency r.Full_scan.stats > 0.95);
  check "tests produced" true (List.length r.Full_scan.tests > 0)

let test_full_scan_functionality_preserved () =
  (* After chain insertion with scan_en = 0, functional behaviour is
     untouched: compare against a pre-insertion copy via run_iteration
     semantics on a tiny circuit. *)
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let f = Netlist.add nl Netlist.Dff [| a |] in
  let _y = Netlist.add nl ~name:"y" Netlist.Po [| f |] in
  let before =
    Sim.run_cycles nl ~stimuli:[| [| true |]; [| false |]; [| true |] |]
  in
  let chain = Full_scan.insert nl in
  (* Same stimulus with scan controls low. *)
  let pis = Netlist.pis nl in
  let stim =
    Array.map
      (fun row ->
        Array.of_list
          (List.map
             (fun p ->
               if p = chain.Chain.scan_en || p = chain.Chain.scan_in then false
               else row.(0))
             pis))
      [| [| true |]; [| false |]; [| true |] |]
  in
  let after = Sim.run_cycles nl ~stimuli:stim in
  (* PO streams agree on the functional output (scan_out may differ). *)
  Array.iteri
    (fun c row -> check "functional value" true (row.(0) = before.(c).(0)))
    after

(* ------------------------------------------------------------------ *)
(* Apply                                                              *)
(* ------------------------------------------------------------------ *)

let test_apply_end_to_end () =
  let d = small_datapath () in
  let ex = Expand.of_datapath d in
  let nl = ex.Expand.netlist in
  let rng = Hft_util.Rng.create 9 in
  let faults =
    Fault.collapsed nl
    |> List.filter (fun _ -> Hft_util.Rng.int rng 40 = 0)
  in
  (* Generate scan-view tests first, then insert the chain and apply
     each test for real. *)
  let dffs = Netlist.dffs nl in
  let assignable = Netlist.pis nl @ dffs in
  let observe =
    Netlist.pos nl @ List.map (fun dd -> (Netlist.fanin nl dd).(0)) dffs
  in
  let pairs =
    List.filter_map
      (fun f ->
        match
          Podem.generate ~backtrack_limit:300 nl ~faults:[ f ] ~assignable
            ~observe
        with
        | Podem.Test assignment, _ -> Some (f, assignment)
        | Podem.Untestable, _ | Podem.Aborted, _ -> None)
      faults
  in
  check "have scan tests" true (List.length pairs >= 3);
  let chain = Full_scan.insert nl in
  let applied = List.length pairs in
  let caught =
    List.length
      (List.filter
         (fun (f, assignment) ->
           Apply.apply_and_check chain ~assignment ~fault:f)
         pairs)
  in
  (* Scan application must catch the overwhelming majority; a test can
     occasionally rely on a second capture (our application does one),
     so allow a small slack. *)
  check "almost all tests apply" true
    (float_of_int caught /. float_of_int applied > 0.9)

(* ------------------------------------------------------------------ *)
(* Partial scan                                                       *)
(* ------------------------------------------------------------------ *)

let test_partial_scan_breaks_loops () =
  let d = small_datapath () in
  let ex = Expand.of_datapath d in
  let nl = ex.Expand.netlist in
  let scanned = Partial_scan.select_gate_level nl in
  check "selects something" true (List.length scanned > 0);
  (* After removing scanned FFs the S-graph is loop-free modulo
     self-loops. *)
  let s = Gsgraph.of_netlist nl in
  let idx_of = Hashtbl.create 16 in
  List.iteri (fun i dd -> Hashtbl.replace idx_of dd i)
    (Array.to_list s.Gsgraph.dff_ids);
  let vertices = List.map (Hashtbl.find idx_of) scanned in
  check "loop-free after cut" true
    (Hft_util.Mfvs.is_feedback_set ~ignore_self_loops:true s.Gsgraph.graph
       vertices)

let test_rtl_selection_fewer_ffs () =
  let d = small_datapath () in
  let ex = Expand.of_datapath d in
  let nl = ex.Expand.netlist in
  let gate_sel = Partial_scan.select_gate_level nl in
  let rtl_sel = Partial_scan.select_rtl_level d ex in
  (* RTL selection picks whole registers: multiples of the width; and
     the per-bit count should not exceed the gate-level count by much
     (typically it is equal or smaller per broken loop). *)
  check "rtl selection non-empty" true (List.length rtl_sel > 0);
  check_int "whole registers" 0 (List.length rtl_sel mod d.Hft_rtl.Datapath.width);
  (* Both selections break all loops. *)
  let s = Gsgraph.of_netlist nl in
  let idx_of = Hashtbl.create 16 in
  List.iteri (fun i dd -> Hashtbl.replace idx_of dd i)
    (Array.to_list s.Gsgraph.dff_ids);
  List.iter
    (fun sel ->
      check "breaks loops" true
        (Hft_util.Mfvs.is_feedback_set ~ignore_self_loops:true s.Gsgraph.graph
           (List.map (Hashtbl.find idx_of) sel)))
    [ gate_sel; rtl_sel ]

let test_partial_scan_atpg_beats_noscan () =
  let d = small_datapath () in
  let ex = Expand.of_datapath d in
  let nl = ex.Expand.netlist in
  let rng = Hft_util.Rng.create 21 in
  let faults =
    Fault.collapsed nl
    |> List.filter (fun _ -> Hft_util.Rng.int rng 60 = 0)
  in
  let scanned = Partial_scan.select_rtl_level d ex in
  let no_scan =
    Partial_scan.atpg ~backtrack_limit:60 ~max_frames:3 nl ~faults ~scanned:[]
  in
  let with_scan =
    Partial_scan.atpg ~backtrack_limit:60 ~max_frames:3 nl ~faults ~scanned
  in
  check "partial scan coverage >= no scan" true
    (Seq_atpg.fault_coverage with_scan >= Seq_atpg.fault_coverage no_scan)

(* ------------------------------------------------------------------ *)
(* Boundary scan                                                      *)
(* ------------------------------------------------------------------ *)

(* Core under wrap: y0 = a & b, y1 = a ^ b. *)
let bs_core () =
  let nl = Netlist.create ~name:"bs_core" () in
  let a = Netlist.add nl ~name:"a" Netlist.Pi [||] in
  let b = Netlist.add nl ~name:"b" Netlist.Pi [||] in
  let g1 = Netlist.add nl Netlist.And [| a; b |] in
  let g2 = Netlist.add nl Netlist.Xor [| a; b |] in
  let _ = Netlist.add nl ~name:"y0" Netlist.Po [| g1 |] in
  let _ = Netlist.add nl ~name:"y1" Netlist.Po [| g2 |] in
  nl

let test_boundary_shift () =
  let t = Boundary.insert (bs_core ()) in
  check "chain shifts" true (Boundary.verify_shift t)

let test_boundary_extest () =
  let t = Boundary.insert (bs_core ()) in
  (* EXTEST with a=1,b=1 driven from the cells (pins forced to 0 by the
     harness): expect y0 = 1, y1 = 0. *)
  (match Boundary.extest_roundtrip t ~inputs:[ true; true ] with
   | [ y0; y1 ] ->
     check "y0 = and = 1" true y0;
     check "y1 = xor = 0" false y1
   | _ -> Alcotest.fail "two output cells expected");
  (match Boundary.extest_roundtrip t ~inputs:[ true; false ] with
   | [ y0; y1 ] ->
     check "y0 = 0" false y0;
     check "y1 = 1" true y1
   | _ -> Alcotest.fail "two output cells expected")

let test_boundary_functional_transparency () =
  (* With bs_shift = extest = 0 the wrapped core behaves like the bare
     one. *)
  let bare = bs_core () in
  let bare_out =
    Sim.run_cycles bare ~stimuli:[| [| true; false |]; [| true; true |] |]
  in
  let t = Boundary.insert (bs_core ()) in
  let nl = t.Boundary.netlist in
  let pis = Netlist.pis nl in
  let stim =
    Array.map
      (fun row ->
        Array.of_list
          (List.map
             (fun p ->
               if p = t.Boundary.bs_shift || p = t.Boundary.extest
                  || p = t.Boundary.bs_in
               then false
               else if Netlist.node_name nl p = "a" then row.(0)
               else row.(1))
             pis))
      [| [| true; false |]; [| true; true |] |]
  in
  let wrapped_out = Sim.run_cycles nl ~stimuli:stim in
  (* Compare the functional POs (y0, y1) — positions 0 and 1. *)
  Array.iteri
    (fun c row ->
      check "y0 transparent" true (row.(0) = bare_out.(c).(0));
      check "y1 transparent" true (row.(1) = bare_out.(c).(1)))
    wrapped_out

let test_boundary_on_datapath () =
  let g = Hft_cdfg.Bench_suite.tseng () in
  let r =
    Hft_hls.Datapath_gen.conventional ~width:3
      ~resources:
        [ (Op.Multiplier, 1); (Op.Alu, 1); (Op.Comparator, 1);
          (Op.Logic_unit, 1) ]
      g
  in
  let ex = Expand.of_datapath r in
  let t = Boundary.insert ex.Expand.netlist in
  check "datapath boundary chain shifts" true (Boundary.verify_shift t)

let () =
  Alcotest.run "hft_scan"
    [
      ( "chain",
        [
          Alcotest.test_case "shift integrity" `Quick test_chain_shift_integrity;
          Alcotest.test_case "test cycles" `Quick test_chain_test_cycles;
          Alcotest.test_case "non-dff rejected" `Quick test_chain_rejects_non_dff;
        ] );
      ( "comb_scan",
        [
          Alcotest.test_case "observes state inputs" `Quick
            test_comb_scan_observes_state_inputs;
        ] );
      ( "full_scan",
        [
          Alcotest.test_case "coverage" `Quick test_full_scan_coverage;
          Alcotest.test_case "drop matches naive" `Quick
            test_full_scan_drop_matches_naive;
          Alcotest.test_case "drop sound with aborts" `Quick
            test_full_scan_drop_sound_with_aborts;
          Alcotest.test_case "functionality preserved" `Quick
            test_full_scan_functionality_preserved;
        ] );
      ("apply", [ Alcotest.test_case "end to end" `Quick test_apply_end_to_end ]);
      ( "partial_scan",
        [
          Alcotest.test_case "breaks loops" `Quick test_partial_scan_breaks_loops;
          Alcotest.test_case "rtl selection" `Quick test_rtl_selection_fewer_ffs;
          Alcotest.test_case "atpg vs noscan" `Quick
            test_partial_scan_atpg_beats_noscan;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "shift" `Quick test_boundary_shift;
          Alcotest.test_case "extest" `Quick test_boundary_extest;
          Alcotest.test_case "transparency" `Quick
            test_boundary_functional_transparency;
          Alcotest.test_case "on a datapath" `Quick test_boundary_on_datapath;
        ] );
    ]
