(* Hft_obs: metrics registry, span tracing, export, and the flow-level
   instrumentation contract (each synthesize call yields one root span
   with named phase children). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* Every test owns the global switch + state; restore on exit so test
   order never matters. *)
let with_obs ?(on = true) f =
  Hft_obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Hft_obs.enabled := false;
      Hft_obs.reset ())
    (fun () -> Hft_obs.with_enabled on f)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  with_obs @@ fun () ->
  Hft_obs.Registry.incr "c";
  Hft_obs.Registry.incr "c" ~by:41;
  check_int "count accumulates by" 42 (Hft_obs.Registry.count "c");
  checkf "value is the sum" 42.0 (Hft_obs.Registry.value "c");
  check_int "absent metric reads 0" 0 (Hft_obs.Registry.count "nope");
  Hft_obs.Registry.reset ();
  check_int "reset clears" 0 (Hft_obs.Registry.count "c")

let test_gauge_and_timer () =
  with_obs @@ fun () ->
  Hft_obs.Registry.set "g" 3.0;
  Hft_obs.Registry.set "g" 1.5;
  checkf "gauge reads last" 1.5 (Hft_obs.Registry.value "g");
  Hft_obs.Registry.observe "t" 2.0;
  Hft_obs.Registry.observe "t" 4.0;
  (match Hft_obs.Registry.find "t" with
   | None -> Alcotest.fail "timer not registered"
   | Some s ->
     check_int "two observations" 2 s.Hft_obs.Metric.s_count;
     checkf "sum" 6.0 s.Hft_obs.Metric.s_sum;
     checkf "min" 2.0 s.Hft_obs.Metric.s_min;
     checkf "max" 4.0 s.Hft_obs.Metric.s_max;
     checkf "mean" 3.0 (Hft_obs.Metric.mean s))

let test_counter_last_cumulative () =
  with_obs @@ fun () ->
  Hft_obs.Registry.incr "c";
  Hft_obs.Registry.incr "c" ~by:41;
  match Hft_obs.Registry.find "c" with
  | None -> Alcotest.fail "counter not registered"
  | Some s ->
    checkf "last is the cumulative total, not the delta" 42.0
      s.Hft_obs.Metric.s_last;
    checkf "value agrees" 42.0 (Hft_obs.Registry.value "c")

let test_histogram_percentiles () =
  with_obs @@ fun () ->
  (* All-equal stream: every percentile is exactly the value (the
     bucket bound is clamped to [min, max]). *)
  for _ = 1 to 10 do
    Hft_obs.Registry.record "h" 5.0
  done;
  (match Hft_obs.Registry.find "h" with
   | None -> Alcotest.fail "histogram not registered"
   | Some s ->
     check "histogram kind" true (s.Hft_obs.Metric.s_kind = Hft_obs.Metric.Histogram);
     checkf "p50 exact on all-equal stream" 5.0
       (Hft_obs.Metric.percentile s 0.5);
     checkf "p95 exact on all-equal stream" 5.0
       (Hft_obs.Metric.percentile s 0.95));
  (* Spread stream: percentiles are monotone in q and bounded by the
     observed range. *)
  List.iter
    (fun v -> Hft_obs.Registry.observe "t" v)
    [ 0.001; 0.002; 0.004; 0.008; 0.016; 0.032; 0.064; 0.128; 0.256; 1.024 ];
  match Hft_obs.Registry.find "t" with
  | None -> Alcotest.fail "timer not registered"
  | Some s ->
    let p50 = Hft_obs.Metric.percentile s 0.5
    and p95 = Hft_obs.Metric.percentile s 0.95 in
    check "p50 <= p95" true (p50 <= p95);
    check "p50 within range" true
      (p50 >= s.Hft_obs.Metric.s_min && p50 <= s.Hft_obs.Metric.s_max);
    check "p95 within range" true
      (p95 >= s.Hft_obs.Metric.s_min && p95 <= s.Hft_obs.Metric.s_max)

let test_time_uses_clock () =
  with_obs @@ fun () ->
  let t = ref 100.0 in
  Hft_obs.Clock.with_source (fun () -> !t) @@ fun () ->
  let x = Hft_obs.Registry.time "t" (fun () -> t := !t +. 2.5; 7) in
  check_int "time returns the thunk's value" 7 x;
  checkf "elapsed from the override clock" 2.5 (Hft_obs.Registry.value "t")

let test_kind_mismatch () =
  with_obs @@ fun () ->
  ignore (Hft_obs.Registry.counter "k");
  check "re-registering under another kind is an error" true
    (match Hft_obs.Registry.timer "k" with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_tree () =
  with_obs @@ fun () ->
  let t = ref 0.0 in
  Hft_obs.Clock.with_source (fun () -> !t) @@ fun () ->
  Hft_obs.Span.with_ "outer" ~attrs:[ ("bench", "tseng") ] (fun () ->
      t := !t +. 0.5;
      Hft_obs.Span.with_ "inner" (fun () -> t := !t +. 0.25);
      Hft_obs.Span.add_attr_int "loops" 3);
  match Hft_obs.Span.roots () with
  | [ root ] ->
    check_str "root name" "outer" (Hft_obs.Span.name root);
    checkf "root elapsed" 0.75 (Hft_obs.Span.elapsed root);
    check "attrs in order" true
      (Hft_obs.Span.attrs root = [ ("bench", "tseng"); ("loops", "3") ]);
    check_int "subtree size" 2 (Hft_obs.Span.count root);
    (match Hft_obs.Span.children root with
     | [ inner ] ->
       check_str "child name" "inner" (Hft_obs.Span.name inner);
       checkf "child elapsed" 0.25 (Hft_obs.Span.elapsed inner)
     | _ -> Alcotest.fail "expected one child")
  | roots ->
    Alcotest.failf "expected one root span, got %d" (List.length roots)

let test_span_dup_attrs () =
  with_obs @@ fun () ->
  Hft_obs.Span.with_ "s" ~attrs:[ ("k", "old"); ("other", "x") ] (fun () ->
      Hft_obs.Span.add_attr "k" "new");
  match Hft_obs.Span.roots () with
  | [ root ] ->
    let attrs = Hft_obs.Span.attrs root in
    check "last write wins" true (List.assoc_opt "k" attrs = Some "new");
    check "other key kept" true (List.assoc_opt "other" attrs = Some "x");
    check_int "one entry per key" 2 (List.length attrs)
  | _ -> Alcotest.fail "expected one root span"

let test_span_exception_safe () =
  with_obs @@ fun () ->
  (try
     Hft_obs.Span.with_ "boom" (fun () ->
         Hft_obs.Span.with_ "inner" (fun () -> failwith "bang"))
   with Failure _ -> ());
  match Hft_obs.Span.roots () with
  | [ root ] ->
    check_str "raising span still recorded" "boom" (Hft_obs.Span.name root);
    check_int "inner attached too" 2 (Hft_obs.Span.count root);
    (* The stack fully unwound: a new span starts a new root. *)
    Hft_obs.Span.with_ "next" (fun () -> ());
    check_int "subsequent span is a fresh root" 2
      (List.length (Hft_obs.Span.roots ()))
  | _ -> Alcotest.fail "expected one root span"

let test_span_render () =
  with_obs @@ fun () ->
  Hft_obs.Span.with_ "a" (fun () -> Hft_obs.Span.with_ "b" (fun () -> ()));
  let s = Hft_obs.Span.render () in
  let has sub =
    let nh = String.length s and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub s i nn = sub || go (i + 1)) in
    go 0
  in
  check "root present" true (has "a  ");
  check "child indented" true (has "\n  b  ");
  check "durations in ms" true (has "ms")

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                      *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  with_obs ~on:false @@ fun () ->
  Hft_obs.Registry.incr "c" ~by:9;
  Hft_obs.Registry.observe "t" 1.0;
  let x = Hft_obs.Span.with_ "s" (fun () -> 5) in
  Hft_obs.Span.add_attr "k" "v";
  check_int "with_ still returns the value" 5 x;
  check_int "no metric recorded" 0 (Hft_obs.Registry.count "c");
  check "no snapshot entries" true (Hft_obs.Registry.snapshot () = []);
  check "no spans recorded" true (Hft_obs.Span.roots () = [])

(* ------------------------------------------------------------------ *)
(* Export round-trips                                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_json_roundtrip () =
  with_obs @@ fun () ->
  Hft_obs.Registry.incr "hft.podem.backtracks" ~by:17;
  Hft_obs.Registry.observe "hft.flow.time" 0.25;
  let text = Hft_util.Json.to_string (Hft_obs.Export.metrics_json ()) in
  match Hft_util.Json.parse text with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Hft_util.Json.member "hft.podem.backtracks" doc with
     | Some m ->
       check "counter value survives" true
         (Hft_util.Json.member "value" m = Some (Hft_util.Json.Int 17))
     | None -> Alcotest.fail "counter missing from export");
    (match Hft_util.Json.member "hft.flow.time" doc with
     | Some m ->
       check "timer sum survives" true
         (Hft_util.Json.member "sum" m = Some (Hft_util.Json.Float 0.25))
     | None -> Alcotest.fail "timer missing from export")

let test_trace_json () =
  with_obs @@ fun () ->
  Hft_obs.Span.with_ "a" ~attrs:[ ("k", "v") ] (fun () ->
      Hft_obs.Span.with_ "b" (fun () -> ()));
  let text = Hft_util.Json.to_string (Hft_obs.Span.trace_to_json ()) in
  match Hft_util.Json.parse text with
  | Ok (Hft_util.Json.List [ root ]) ->
    check "root name" true
      (Hft_util.Json.member "name" root = Some (Hft_util.Json.String "a"));
    (match Hft_util.Json.member "children" root with
     | Some (Hft_util.Json.List [ _ ]) -> ()
     | _ -> Alcotest.fail "child span missing")
  | Ok _ -> Alcotest.fail "expected a one-root trace"
  | Error e -> Alcotest.fail e

let test_table_cells () =
  let open Hft_util.Json in
  check "int cell" true (Hft_obs.Table.cell_to_json "12" = Int 12);
  check "float cell" true (Hft_obs.Table.cell_to_json "1.5" = Float 1.5);
  check "percentage cell" true (Hft_obs.Table.cell_to_json "97.3%" = Float 0.973);
  check "string cell" true (Hft_obs.Table.cell_to_json "ewf" = String "ewf");
  match
    Hft_obs.Table.row_to_json ~title:"t" ~header:[ "bench"; "n" ]
      [ "ewf"; "34" ]
  with
  | Obj kvs ->
    check "title column" true (List.assoc_opt "table" kvs = Some (String "t"));
    check "typed cell" true (List.assoc_opt "n" kvs = Some (Int 34))
  | _ -> Alcotest.fail "row_to_json should build an object"

(* ------------------------------------------------------------------ *)
(* Flight recorder: journal, ledger, Chrome trace                     *)
(* ------------------------------------------------------------------ *)

let test_journal_ring () =
  with_obs @@ fun () ->
  Hft_obs.Journal.set_capacity 8;
  Fun.protect ~finally:(fun () -> Hft_obs.Journal.set_capacity 4096)
  @@ fun () ->
  for i = 0 to 19 do
    Hft_obs.Journal.record
      (Hft_obs.Journal.Note { key = "i"; value = string_of_int i })
  done;
  let entries = Hft_obs.Journal.entries () in
  check_int "ring keeps the newest capacity entries" 8 (List.length entries);
  check_int "recorded counts everything" 20 (Hft_obs.Journal.recorded ());
  check_int "dropped = recorded - kept" 12 (Hft_obs.Journal.dropped ());
  (match entries with
   | first :: _ ->
     check_int "oldest surviving seq" 12 first.Hft_obs.Journal.e_seq
   | [] -> Alcotest.fail "empty ring");
  check "entries are seq-ordered" true
    (List.for_all2
       (fun e i -> e.Hft_obs.Journal.e_seq = 12 + i)
       entries
       (List.init 8 Fun.id))

let test_journal_jsonl () =
  with_obs @@ fun () ->
  Hft_obs.Journal.record (Hft_obs.Journal.Collapse { faults = 9; classes = 4 });
  Hft_obs.Journal.record
    (Hft_obs.Journal.Fault_dropped { cls = 3; test = 1 });
  let lines =
    String.split_on_char '\n' (Hft_obs.Journal.to_jsonl ())
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per entry" 2 (List.length lines);
  let types =
    List.map
      (fun line ->
        match Hft_util.Json.parse line with
        | Error e -> Alcotest.failf "line does not parse: %s" e
        | Ok doc ->
          (match Hft_util.Json.member "type" doc with
           | Some (Hft_util.Json.String t) -> t
           | _ -> Alcotest.fail "line has no type field"))
      lines
  in
  check "snake_case event tags" true (types = [ "collapse"; "fault_dropped" ])

let test_ledger_lifecycle () =
  with_obs @@ fun () ->
  let a = Hft_obs.Ledger.register_class ~rep:"f0/SA0" ~members:[ "f0/SA0" ] in
  let b =
    Hft_obs.Ledger.register_class ~rep:"f1/SA1"
      ~members:[ "f1/SA1"; "f2/SA0" ]
  in
  check_int "dense handles" 0 a;
  check_int "dense handles (2)" 1 b;
  let t = Hft_obs.Ledger.register_test ~frames:2 in
  Hft_obs.Ledger.annotate_last_test ~first_row:5 ~n_rows:2;
  Hft_obs.Ledger.resolve a
    (Hft_obs.Ledger.Podem_detected { test = t; backtracks = 3; frames = 2 });
  Hft_obs.Ledger.resolve b (Hft_obs.Ledger.Drop_detected { test = t });
  Hft_obs.Ledger.charge a ~implications:10 ~backtracks:3;
  Hft_obs.Ledger.charge b ~fsim_events:50;
  let waterfall = Hft_obs.Ledger.waterfall () in
  check_int "waterfall classes conserve" (Hft_obs.Ledger.n_classes ())
    (List.fold_left (fun acc (_, (c, _)) -> acc + c) 0 waterfall);
  check_int "waterfall faults conserve" (Hft_obs.Ledger.total_faults ())
    (List.fold_left (fun acc (_, (_, f)) -> acc + f) 0 waterfall);
  check_int "dropped class counts both members" 2
    (match List.assoc_opt "drop_detected" waterfall with
     | Some (_, f) -> f
     | None -> -1);
  (match Hft_obs.Ledger.tests () with
   | [ test ] ->
     check_int "test id" t test.Hft_obs.Ledger.lt_id;
     check "pattern rows attached" true
       (test.Hft_obs.Ledger.lt_rows = Some (5, 2))
   | _ -> Alcotest.fail "expected one registered test");
  match Hft_obs.Ledger.top_expensive ~k:1 with
  | [ row ] ->
    check_int "most expensive is the fsim-heavy class" b
      row.Hft_obs.Ledger.lr_class;
    check_int "cost sums the counters" 50 (Hft_obs.Ledger.cost row)
  | _ -> Alcotest.fail "expected one top row"

let test_flight_recorder_disabled () =
  with_obs ~on:false @@ fun () ->
  Hft_obs.Journal.record (Hft_obs.Journal.Note { key = "k"; value = "v" });
  let h = Hft_obs.Ledger.register_class ~rep:"f/SA0" ~members:[ "f/SA0" ] in
  check_int "register_class returns -1 when disabled" (-1) h;
  Hft_obs.Ledger.resolve h (Hft_obs.Ledger.Drop_detected { test = 0 });
  Hft_obs.Ledger.charge h ~fsim_events:5;
  check_int "no test ids when disabled" (-1)
    (Hft_obs.Ledger.register_test ~frames:1);
  Hft_obs.Ledger.annotate_last_test ~first_row:0 ~n_rows:1;
  check "journal stays empty" true (Hft_obs.Journal.entries () = []);
  check_int "journal recorded nothing" 0 (Hft_obs.Journal.recorded ());
  check_int "ledger has no rows" 0 (Hft_obs.Ledger.n_classes ());
  check "ledger rows empty" true (Hft_obs.Ledger.rows () = [])

let test_chrome_trace () =
  with_obs @@ fun () ->
  let t = ref 10.0 in
  Hft_obs.Clock.with_source (fun () -> !t) @@ fun () ->
  Hft_obs.Span.with_ "outer" ~attrs:[ ("bench", "tseng") ] (fun () ->
      t := !t +. 0.25;
      Hft_obs.Span.with_ "inner" (fun () -> t := !t +. 0.5);
      t := !t +. 0.25);
  let doc = Hft_obs.Export.chrome_trace () in
  let events =
    match Hft_util.Json.member "traceEvents" doc with
    | Some (Hft_util.Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  let field ev k =
    match Hft_util.Json.member k ev with
    | Some v -> v
    | None -> Alcotest.failf "event missing %s" k
  in
  let num ev k =
    match field ev k with
    | Hft_util.Json.Float f -> f
    | Hft_util.Json.Int i -> float_of_int i
    | _ -> Alcotest.failf "%s not numeric" k
  in
  (* One thread_name metadata record for the orchestrator track, then
     one complete event per span. *)
  let metas, events =
    List.partition (fun ev -> field ev "ph" = Hft_util.Json.String "M") events
  in
  check_int "one thread_name record" 1 (List.length metas);
  check_int "one event per span" 2 (List.length events);
  List.iter
    (fun ev ->
      check "complete events" true
        (field ev "ph" = Hft_util.Json.String "X");
      check "shared pid" true (field ev "pid" = Hft_util.Json.Int 1);
      (* Everything here ran on the orchestrator: domain id 0, named. *)
      check "orchestrator tid" true (field ev "tid" = Hft_util.Json.Int 0))
    events;
  let by_name n =
    match
      List.find_opt (fun ev -> field ev "name" = Hft_util.Json.String n) events
    with
    | Some ev -> ev
    | None -> Alcotest.failf "span %s missing from trace" n
  in
  let outer = by_name "outer" and inner = by_name "inner" in
  checkf "timestamps relative to earliest root (us)" 0.0 (num outer "ts");
  checkf "outer duration in us" 1e6 (num outer "dur");
  checkf "child offset in us" 0.25e6 (num inner "ts");
  checkf "child duration in us" 0.5e6 (num inner "dur");
  check "child contained in parent" true
    (num inner "ts" >= num outer "ts"
     && num inner "ts" +. num inner "dur"
        <= num outer "ts" +. num outer "dur");
  match Hft_util.Json.member "bench" (field outer "args") with
  | Some (Hft_util.Json.String "tseng") -> ()
  | _ -> Alcotest.fail "span attrs not exported under args"

(* Multi-track traces: worker slices land on their own tid, tracks are
   labelled, and speculation→commit flow arrows pair up (an "s" with no
   terminating "f" would dangle in the viewer, so it is suppressed). *)
let test_trace_tracks () =
  with_obs @@ fun () ->
  let t = ref 10.0 in
  Hft_obs.Clock.with_source (fun () -> !t) @@ fun () ->
  Hft_obs.Span.with_ "campaign" (fun () -> t := !t +. 1.0);
  (* Two worker evals; one is consumed by the commit window (flow 7),
     one's speculation never commits (flow 8 — must stay arrowless). *)
  Hft_obs.Span.add_track ~flow_out:7 ~domain:1 ~name:"eval" ~start:10.1
    ~dur:0.2 ();
  Hft_obs.Span.add_track ~flow_out:8 ~domain:2 ~name:"eval" ~start:10.2
    ~dur:0.3 ();
  Hft_obs.Span.add_track ~flow_in:[ 7 ] ~domain:0 ~name:"commit-window"
    ~start:10.6 ~dur:0.1 ();
  let doc = Hft_obs.Export.chrome_trace () in
  let events =
    match Hft_util.Json.member "traceEvents" doc with
    | Some (Hft_util.Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  let field ev k =
    match Hft_util.Json.member k ev with
    | Some v -> v
    | None -> Alcotest.failf "event missing %s" k
  in
  let ph p ev = field ev "ph" = Hft_util.Json.String p in
  let tid ev =
    match field ev "tid" with
    | Hft_util.Json.Int i -> i
    | _ -> Alcotest.fail "tid not an int"
  in
  let tids =
    List.sort_uniq compare (List.map tid events)
  in
  check "one timeline per domain" true (tids = [ 0; 1; 2 ]);
  let metas = List.filter (ph "M") events in
  check_int "one thread_name per track" 3 (List.length metas);
  let meta_names =
    List.filter_map
      (fun ev ->
        match Hft_util.Json.member "name" (field ev "args") with
        | Some (Hft_util.Json.String s) -> Some s
        | _ -> None)
      metas
  in
  check "tracks are labelled" true
    (List.sort compare meta_names
     = [ "orchestrator"; "worker-1"; "worker-2" ]);
  let flow_id ev =
    match field ev "id" with
    | Hft_util.Json.Int i -> i
    | _ -> Alcotest.fail "flow id not an int"
  in
  let starts = List.filter (ph "s") events in
  let finishes = List.filter (ph "f") events in
  check_int "one flow start (uncommitted one suppressed)" 1
    (List.length starts);
  check_int "one flow finish" 1 (List.length finishes);
  check_int "flow start is the committed speculation" 7
    (flow_id (List.hd starts));
  check_int "flow finish matches" 7 (flow_id (List.hd finishes));
  check "flow starts on the worker track" true (tid (List.hd starts) = 1);
  check "flow finishes on the orchestrator track" true
    (tid (List.hd finishes) = 0);
  (* Track slices are ordinary complete events on their worker's tid. *)
  let evals =
    List.filter
      (fun ev -> ph "X" ev && field ev "name" = Hft_util.Json.String "eval")
      events
  in
  check_int "worker slices exported" 2 (List.length evals)

(* Folded stacks: deterministic flamegraph.pl input — paths are
   ;-joined span names with integer self-time microseconds, worker
   slices fold under a worker-<d> root, and domain-0 track slices are
   excluded (their time is already inside the span tree). *)
let test_folded_stacks () =
  with_obs @@ fun () ->
  let t = ref 0.0 in
  Hft_obs.Clock.with_source (fun () -> !t) @@ fun () ->
  Hft_obs.Span.with_ "outer" (fun () ->
      t := !t +. 0.25;
      Hft_obs.Span.with_ "inner" (fun () -> t := !t +. 0.5);
      t := !t +. 0.25);
  Hft_obs.Span.add_track ~domain:1 ~name:"eval" ~start:0.1 ~dur:0.125 ();
  Hft_obs.Span.add_track ~domain:0 ~name:"commit-window" ~start:0.8 ~dur:0.1
    ();
  let folded = Hft_obs.Export.folded_stacks () in
  check_str "folded stacks are exact and sorted"
    "outer 500000\nouter;inner 500000\nworker-1;eval 125000\n" folded;
  (* Self-time attribution agrees: outer's self time excludes inner. *)
  match Hft_obs.Export.self_times () with
  | [ (n1, t1); (n2, t2) ] ->
    check "two named spans" true
      (List.sort compare [ n1; n2 ] = [ "inner"; "outer" ]);
    checkf "self times halve the second" 0.5 t1;
    checkf "and the other half" 0.5 t2
  | l -> Alcotest.failf "expected 2 self-time rows, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Flow instrumentation contract                                      *)
(* ------------------------------------------------------------------ *)

let test_flow_spans () =
  let g = Hft_cdfg.Paper_fig1.graph () in
  List.iter
    (fun (name, kind) ->
      with_obs @@ fun () ->
      ignore (Hft_core.Flow.synthesize ~width:4 kind g);
      match Hft_obs.Span.roots () with
      | [ root ] ->
        check_str
          (Printf.sprintf "%s root span" name)
          ("flow:" ^ name) (Hft_obs.Span.name root);
        check
          (Printf.sprintf "%s has >= 3 phase children" name)
          true
          (List.length (Hft_obs.Span.children root) >= 3);
        (* Partial-scan and BIST run a conventional baseline internally,
           so runs >= 1 but the root span is still the outer flow. *)
        check
          (Printf.sprintf "%s counted its run" name)
          true
          (Hft_obs.Registry.count "hft.flow.runs" >= 1);
        check
          (Printf.sprintf "%s timed its run" name)
          true
          (Hft_obs.Registry.value "hft.flow.time" >= 0.0
           && Hft_obs.Registry.count "hft.flow.time" >= 1)
      | roots ->
        Alcotest.failf "%s: expected one root span, got %d" name
          (List.length roots))
    Hft_core.Flow.flow_kinds

(* ------------------------------------------------------------------ *)
(* Progress: the hft-progress/1 stream, watch views, offline rebuild  *)
(* ------------------------------------------------------------------ *)

let jsonl_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let parse_line l =
  match Hft_util.Json.parse l with
  | Ok d -> d
  | Error e -> Alcotest.failf "unparseable stream line %S: %s" l e

let jint k d =
  match Hft_util.Json.member k d with
  | Some (Hft_util.Json.Int i) -> i
  | _ -> Alcotest.failf "missing int field %s" k

let jstr k d =
  match Hft_util.Json.member k d with
  | Some (Hft_util.Json.String s) -> s
  | _ -> Alcotest.failf "missing string field %s" k

(* One small real campaign streamed into a buffer; returns
   (stream lines, journal tape, ledger tape, live waterfall JSON,
   campaign result). *)
let run_streamed_campaign ?(every = 2) () =
  let g = Hft_cdfg.Paper_fig1.graph () in
  let b = Buffer.create 4096 in
  Hft_obs.Progress.start
    ~config:
      { Hft_obs.Progress.default_config with
        Hft_obs.Progress.every_classes = every }
    (Hft_obs.Progress.sink_of_buffer b);
  Fun.protect ~finally:Hft_obs.Progress.stop (fun () ->
      let r = Hft_core.Flow.synthesize_for_partial_scan ~width:4 g in
      let c =
        Hft_core.Flow.test_campaign ~backtrack_limit:20 ~max_frames:2
          ~sample:4 ~seed:7 ~n_patterns:16 ~campaign:"fig1/test" r
      in
      let journal = Hft_obs.Journal.to_jsonl () in
      let ledger = Hft_obs.Ledger.to_jsonl () in
      let live_wf = Hft_util.Json.to_string (Hft_obs.Ledger.waterfall_json ()) in
      Hft_obs.Progress.stop ();
      (jsonl_lines (Buffer.contents b), journal, ledger, live_wf, c))

let test_progress_stream () =
  with_obs @@ fun () ->
  let lines, _, _, live_wf, _ = run_streamed_campaign () in
  let docs = List.map parse_line lines in
  check "stream non-trivial" true (List.length docs > 10);
  (* Every event: schema + strictly monotone seq. *)
  let _ =
    List.fold_left
      (fun prev d ->
        check_str "schema" "hft-progress/1" (jstr "schema" d);
        let seq = jint "seq" d in
        check ("seq strictly monotone at " ^ string_of_int seq) true
          (seq > prev);
        seq)
      (-1) docs
  in
  let snapshots =
    List.filter (fun d -> jstr "type" d = "snapshot") docs
  in
  let finals, intermediates =
    List.partition
      (fun d ->
        Hft_util.Json.member "final" d = Some (Hft_util.Json.Bool true))
      snapshots
  in
  check "at least 2 intermediate snapshots" true
    (List.length intermediates >= 2);
  check_int "exactly one final snapshot" 1 (List.length finals);
  (* Conservation at every emission: per-outcome classes/faults sum to
     the waterfall totals, and resolved matches the outcome tallies. *)
  List.iter
    (fun d ->
      let wf =
        match Hft_util.Json.member "waterfall" d with
        | Some w -> w
        | None -> Alcotest.fail "snapshot without waterfall"
      in
      let cell k =
        match Hft_util.Json.member k wf with
        | Some c -> (jint "classes" c, jint "faults" c)
        | None -> Alcotest.failf "waterfall missing %s" k
      in
      let sum_c, sum_f =
        List.fold_left
          (fun (ac, af) k ->
            let c, f = cell k in
            (ac + c, af + f))
          (0, 0) Hft_obs.Ledger.outcome_keys
      in
      check_int "classes conserved" (jint "classes" wf) sum_c;
      check_int "faults conserved" (jint "faults" wf) sum_f;
      let nt_c, _ = cell "never_targeted" in
      check_int "resolved = classes - never_targeted" (jint "resolved" d)
        (jint "classes" wf - nt_c))
    snapshots;
  (* The final snapshot's waterfall is the live ledger waterfall, bit
     for bit. *)
  (match finals with
   | [ f ] ->
     (match Hft_util.Json.member "waterfall" f with
      | Some wf ->
        check_str "final snapshot = live waterfall" live_wf
          (Hft_util.Json.to_string wf)
      | None -> Alcotest.fail "final snapshot without waterfall")
   | _ -> ());
  (* The stream is terminated explicitly. *)
  match List.rev docs with
  | last :: _ -> check_str "terminator" "stream_end" (jstr "type" last)
  | [] -> ()

(* Progress only reads engine state: a campaign with the streamer on
   must leave the engines' effort bit-identical to one with
   observability entirely off. *)
let test_progress_disabled_differential () =
  let g = Hft_cdfg.Paper_fig1.graph () in
  let campaign () =
    let r = Hft_core.Flow.synthesize_for_partial_scan ~width:4 g in
    Hft_core.Flow.test_campaign ~backtrack_limit:20 ~max_frames:2 ~sample:4
      ~seed:7 ~n_patterns:16 r
  in
  let c_off =
    Hft_obs.reset ();
    Hft_obs.with_enabled false campaign
  in
  let c_on =
    with_obs @@ fun () ->
    let b = Buffer.create 1024 in
    Hft_obs.Progress.start (Hft_obs.Progress.sink_of_buffer b);
    Fun.protect ~finally:Hft_obs.Progress.stop campaign
  in
  check "atpg stats bit-identical" true
    (c_off.Hft_core.Flow.c_atpg = c_on.Hft_core.Flow.c_atpg);
  check "fsim coverage identical" true
    (Hft_gate.Fsim.coverage c_off.Hft_core.Flow.c_fsim
     = Hft_gate.Fsim.coverage c_on.Hft_core.Flow.c_fsim);
  check "patterns stored identical" true
    (c_off.Hft_core.Flow.c_patterns_stored
     = c_on.Hft_core.Flow.c_patterns_stored)

let test_openmetrics_grammar () =
  with_obs @@ fun () ->
  Hft_obs.Registry.incr "hft.test.counter" ~by:3;
  Hft_obs.Registry.set "hft.test.gauge" 1.5;
  Hft_obs.Registry.observe "hft.test.hist" 0.5;
  Hft_obs.Registry.observe "hft.test.hist" 2.0;
  Hft_obs.Registry.observe "hft.test.hist" 2.0;
  let text = Hft_obs.Export.openmetrics () in
  let lines = String.split_on_char '\n' text in
  check "ends with EOF terminator" true
    (match List.rev (List.filter (fun l -> l <> "") lines) with
     | "# EOF" :: _ -> true
     | _ -> false);
  (* Every exposition line is a comment or `name{labels} value` with a
     mangled (metric-charset) name. *)
  let name_ok n =
    n <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = ':')
         n
  in
  List.iter
    (fun l ->
      if l <> "" && not (String.length l >= 1 && l.[0] = '#') then begin
        match String.index_opt l ' ' with
        | None -> Alcotest.failf "sample line without value: %S" l
        | Some i ->
          let name = String.sub l 0 i in
          let name =
            match String.index_opt name '{' with
            | Some j -> String.sub name 0 j
            | None -> name
          in
          check ("metric name charset: " ^ name) true (name_ok name)
      end)
    lines;
  let has s =
    List.exists (fun l -> l = s) lines
  in
  check "counter typed" true (has "# TYPE hft_test_counter counter");
  check "counter total sample" true (has "hft_test_counter_total 3");
  check "gauge typed" true (has "# TYPE hft_test_gauge gauge");
  check "gauge sample" true (has "hft_test_gauge 1.5");
  check "histogram typed" true (has "# TYPE hft_test_hist histogram");
  check "histogram count" true (has "hft_test_hist_count 3");
  check "histogram sum" true (has "hft_test_hist_sum 4.5");
  (* Buckets: cumulative, non-decreasing, increasing le, +Inf = count. *)
  let buckets =
    List.filter_map
      (fun l ->
        let p = "hft_test_hist_bucket{le=\"" in
        let pl = String.length p in
        if String.length l > pl && String.sub l 0 pl = p then begin
          match String.index_opt l '}' with
          | Some j ->
            let le = String.sub l pl (j - 1 - pl) in
            let v =
              int_of_string (String.sub l (j + 2) (String.length l - j - 2))
            in
            Some (le, v)
          | None -> None
        end
        else None)
      lines
  in
  check "has buckets" true (List.length buckets >= 2);
  let rec monotone = function
    | (le1, v1) :: ((le2, v2) :: _ as rest) ->
      let f s = if s = "+Inf" then infinity else float_of_string s in
      check "le increasing" true (f le1 < f le2);
      check "cumulative non-decreasing" true (v1 <= v2);
      monotone rest
    | _ -> ()
  in
  monotone buckets;
  (match List.rev buckets with
   | ("+Inf", v) :: _ -> check_int "+Inf bucket = count" 3 v
   | _ -> Alcotest.fail "no +Inf bucket")

let test_watch_view () =
  with_obs @@ fun () ->
  let lines, _, _, _, _ = run_streamed_campaign () in
  (* Completed stream: finished, seq-clean, campaign label visible. *)
  let v = Hft_obs.Progress.view_of_lines lines in
  check "completed stream finished" true v.Hft_obs.Progress.v_finished;
  check "seq ok" true v.Hft_obs.Progress.v_seq_ok;
  check_int "no bad lines" 0 v.Hft_obs.Progress.v_bad;
  check_int "one campaign finished" 1 v.Hft_obs.Progress.v_campaigns_done;
  check "campaign label" true
    (v.Hft_obs.Progress.v_campaign = Some "fig1/test");
  let dash = Hft_obs.Progress.render_view v in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "dashboard mentions campaign" true (contains dash "fig1/test");
  (* Truncated live tail: still renders, not finished. *)
  let half = List.filteri (fun i _ -> i < List.length lines / 2) lines in
  let vh = Hft_obs.Progress.view_of_lines half in
  check "truncated stream not finished" false vh.Hft_obs.Progress.v_finished;
  check "truncated stream renders" true
    (String.length (Hft_obs.Progress.render_view vh) > 0);
  (* A replayed (non-monotone) line trips the gap detector; a torn tail
     (unparseable) is counted, not fatal. *)
  let vg =
    Hft_obs.Progress.view_of_lines (lines @ [ List.hd lines; "{torn" ])
  in
  check "seq gap detected" false vg.Hft_obs.Progress.v_seq_ok;
  check_int "torn line counted" 1 vg.Hft_obs.Progress.v_bad

(* Forward compatibility: a stream written by a newer hft (extra event
   kinds, extra snapshot fields) must fold and render — skipped data is
   counted and surfaced as a warning, never a crash. *)
let test_watch_forward_compat () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let lines =
    [ {|{"schema":"hft-progress/1","seq":0,"time":1.0,"type":"campaign_started","campaign":"c","faults":10}|};
      (* An event kind this watch predates. *)
      {|{"schema":"hft-progress/1","seq":1,"time":1.1,"type":"quantum_snapshot","qubits":3}|};
      (* A snapshot carrying one unknown field plus a parallel object. *)
      {|{"schema":"hft-progress/1","seq":2,"time":1.2,"type":"snapshot","final":true,"campaign":"c","phase":null,"elapsed_s":0.2,"classes":4,"resolved":4,"tests":2,"rate_cps":20.0,"eta_s":null,"waterfall":{"faults":10},"gc":{"compactions":0},"top":[],"parallel":{"jobs":2,"tasks":8,"steals":1,"spec_hits":7,"spec_misses":1,"utilization":0.8,"workers":[{"domain":0,"classes":3,"steals":0,"utilization":0.9},{"domain":1,"classes":1,"steals":1,"utilization":0.7}]},"novel_field":{"x":1}}|}
    ]
  in
  let v = Hft_obs.Progress.view_of_lines lines in
  check_int "unknown event counted" 1 v.Hft_obs.Progress.v_unknown_events;
  check_int "unknown snapshot field counted" 1
    v.Hft_obs.Progress.v_unknown_fields;
  check_int "unknown lines still parse as events" 3
    v.Hft_obs.Progress.v_events;
  check "stream still finishes" true v.Hft_obs.Progress.v_finished;
  let dash = Hft_obs.Progress.render_view v in
  check "dashboard warns about skipped data" true
    (contains dash "skipped 1 unknown event(s), 1 unknown snapshot field(s)");
  (* The parallel object renders: pool summary plus per-worker bars. *)
  check "pool summary rendered" true (contains dash "jobs 2");
  check "worker bar rendered" true (contains dash "w1");
  check "worker utilization rendered" true (contains dash "70%");
  (* A snapshot without the parallel object renders bar-free. *)
  let v0 =
    Hft_obs.Progress.view_of_lines
      [ {|{"schema":"hft-progress/1","seq":0,"time":1.0,"type":"snapshot","final":false,"classes":1,"resolved":0,"tests":0,"waterfall":{"faults":1},"top":[]}|} ]
  in
  check "no spurious warning" true
    (not (contains (Hft_obs.Progress.render_view v0) "skipped"))

let test_offline_rebuild () =
  with_obs @@ fun () ->
  let _, journal, ledger, live_wf, _ = run_streamed_campaign () in
  (* Ledger tape: exact rebuild, field for field. *)
  (match Hft_obs.Progress.offline_of_lines (jsonl_lines ledger) with
   | Error e -> Alcotest.failf "ledger tape: %s" e
   | Ok off ->
     check_str "source" "ledger" off.Hft_obs.Progress.off_source;
     check_str "ledger tape = live waterfall" live_wf
       (Hft_util.Json.to_string
          (Hft_obs.Progress.offline_waterfall_json off));
     check "expensive table present" true
       (off.Hft_obs.Progress.off_expensive <> []));
  (* Journal tape: the campaign fits the ring, so it is exact too. *)
  check_int "ring did not drop" 0 (Hft_obs.Journal.dropped ());
  (match Hft_obs.Progress.offline_of_lines (jsonl_lines journal) with
   | Error e -> Alcotest.failf "journal tape: %s" e
   | Ok off ->
     check_str "source" "journal" off.Hft_obs.Progress.off_source;
     check_str "journal tape = live waterfall" live_wf
       (Hft_util.Json.to_string
          (Hft_obs.Progress.offline_waterfall_json off)));
  match Hft_obs.Progress.offline_of_lines [ "not json"; "{}" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage tape should not rebuild"

let test_span_gc_attrs () =
  with_obs @@ fun () ->
  Hft_obs.Config.gc_stats := true;
  Fun.protect
    ~finally:(fun () -> Hft_obs.Config.gc_stats := false)
    (fun () ->
      Hft_obs.Span.with_ "alloc" (fun () ->
          (* Small allocations land in the minor heap, so the minor
             words delta is reliably positive. *)
          for i = 1 to 1000 do
            ignore (Sys.opaque_identity (ref i))
          done);
      match Hft_obs.Span.roots () with
      | [ root ] ->
        let attrs = Hft_obs.Span.attrs root in
        List.iter
          (fun k ->
            check ("span has " ^ k) true (List.mem_assoc k attrs))
          [ "gc_minor_w"; "gc_major_w"; "gc_compact" ];
        check "minor words positive" true
          (float_of_string (List.assoc "gc_minor_w" attrs) > 0.0)
      | _ -> Alcotest.fail "expected one root span")

let () =
  Alcotest.run "hft_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter last is cumulative" `Quick
            test_counter_last_cumulative;
          Alcotest.test_case "gauge and timer" `Quick test_gauge_and_timer;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "time uses clock" `Quick test_time_uses_clock;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
        ] );
      ( "spans",
        [
          Alcotest.test_case "tree" `Quick test_span_tree;
          Alcotest.test_case "duplicate attrs" `Quick test_span_dup_attrs;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "render" `Quick test_span_render;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "no-op" `Quick test_disabled_noop;
          Alcotest.test_case "flight recorder no-op" `Quick
            test_flight_recorder_disabled;
        ] );
      ( "export",
        [
          Alcotest.test_case "metrics json" `Quick test_metrics_json_roundtrip;
          Alcotest.test_case "trace json" `Quick test_trace_json;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
          Alcotest.test_case "trace tracks" `Quick test_trace_tracks;
          Alcotest.test_case "folded stacks" `Quick test_folded_stacks;
          Alcotest.test_case "table cells" `Quick test_table_cells;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "journal ring" `Quick test_journal_ring;
          Alcotest.test_case "journal jsonl" `Quick test_journal_jsonl;
          Alcotest.test_case "ledger lifecycle" `Quick test_ledger_lifecycle;
        ] );
      ("flow", [ Alcotest.test_case "phase spans" `Quick test_flow_spans ]);
      ( "progress",
        [
          Alcotest.test_case "stream contract" `Quick test_progress_stream;
          Alcotest.test_case "engines unchanged when disabled" `Quick
            test_progress_disabled_differential;
          Alcotest.test_case "openmetrics grammar" `Quick
            test_openmetrics_grammar;
          Alcotest.test_case "watch view" `Quick test_watch_view;
          Alcotest.test_case "watch forward compat" `Quick
            test_watch_forward_compat;
          Alcotest.test_case "offline rebuild" `Quick test_offline_rebuild;
          Alcotest.test_case "span gc attrs" `Quick test_span_gc_attrs;
        ] );
    ]
