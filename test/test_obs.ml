(* Hft_obs: metrics registry, span tracing, export, and the flow-level
   instrumentation contract (each synthesize call yields one root span
   with named phase children). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* Every test owns the global switch + state; restore on exit so test
   order never matters. *)
let with_obs ?(on = true) f =
  Hft_obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Hft_obs.enabled := false;
      Hft_obs.reset ())
    (fun () -> Hft_obs.with_enabled on f)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  with_obs @@ fun () ->
  Hft_obs.Registry.incr "c";
  Hft_obs.Registry.incr "c" ~by:41;
  check_int "count accumulates by" 42 (Hft_obs.Registry.count "c");
  checkf "value is the sum" 42.0 (Hft_obs.Registry.value "c");
  check_int "absent metric reads 0" 0 (Hft_obs.Registry.count "nope");
  Hft_obs.Registry.reset ();
  check_int "reset clears" 0 (Hft_obs.Registry.count "c")

let test_gauge_and_timer () =
  with_obs @@ fun () ->
  Hft_obs.Registry.set "g" 3.0;
  Hft_obs.Registry.set "g" 1.5;
  checkf "gauge reads last" 1.5 (Hft_obs.Registry.value "g");
  Hft_obs.Registry.observe "t" 2.0;
  Hft_obs.Registry.observe "t" 4.0;
  (match Hft_obs.Registry.find "t" with
   | None -> Alcotest.fail "timer not registered"
   | Some s ->
     check_int "two observations" 2 s.Hft_obs.Metric.s_count;
     checkf "sum" 6.0 s.Hft_obs.Metric.s_sum;
     checkf "min" 2.0 s.Hft_obs.Metric.s_min;
     checkf "max" 4.0 s.Hft_obs.Metric.s_max;
     checkf "mean" 3.0 (Hft_obs.Metric.mean s))

let test_time_uses_clock () =
  with_obs @@ fun () ->
  let t = ref 100.0 in
  Hft_obs.Clock.with_source (fun () -> !t) @@ fun () ->
  let x = Hft_obs.Registry.time "t" (fun () -> t := !t +. 2.5; 7) in
  check_int "time returns the thunk's value" 7 x;
  checkf "elapsed from the override clock" 2.5 (Hft_obs.Registry.value "t")

let test_kind_mismatch () =
  with_obs @@ fun () ->
  ignore (Hft_obs.Registry.counter "k");
  check "re-registering under another kind is an error" true
    (match Hft_obs.Registry.timer "k" with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_tree () =
  with_obs @@ fun () ->
  let t = ref 0.0 in
  Hft_obs.Clock.with_source (fun () -> !t) @@ fun () ->
  Hft_obs.Span.with_ "outer" ~attrs:[ ("bench", "tseng") ] (fun () ->
      t := !t +. 0.5;
      Hft_obs.Span.with_ "inner" (fun () -> t := !t +. 0.25);
      Hft_obs.Span.add_attr_int "loops" 3);
  match Hft_obs.Span.roots () with
  | [ root ] ->
    check_str "root name" "outer" (Hft_obs.Span.name root);
    checkf "root elapsed" 0.75 (Hft_obs.Span.elapsed root);
    check "attrs in order" true
      (Hft_obs.Span.attrs root = [ ("bench", "tseng"); ("loops", "3") ]);
    check_int "subtree size" 2 (Hft_obs.Span.count root);
    (match Hft_obs.Span.children root with
     | [ inner ] ->
       check_str "child name" "inner" (Hft_obs.Span.name inner);
       checkf "child elapsed" 0.25 (Hft_obs.Span.elapsed inner)
     | _ -> Alcotest.fail "expected one child")
  | roots ->
    Alcotest.failf "expected one root span, got %d" (List.length roots)

let test_span_exception_safe () =
  with_obs @@ fun () ->
  (try
     Hft_obs.Span.with_ "boom" (fun () ->
         Hft_obs.Span.with_ "inner" (fun () -> failwith "bang"))
   with Failure _ -> ());
  match Hft_obs.Span.roots () with
  | [ root ] ->
    check_str "raising span still recorded" "boom" (Hft_obs.Span.name root);
    check_int "inner attached too" 2 (Hft_obs.Span.count root);
    (* The stack fully unwound: a new span starts a new root. *)
    Hft_obs.Span.with_ "next" (fun () -> ());
    check_int "subsequent span is a fresh root" 2
      (List.length (Hft_obs.Span.roots ()))
  | _ -> Alcotest.fail "expected one root span"

let test_span_render () =
  with_obs @@ fun () ->
  Hft_obs.Span.with_ "a" (fun () -> Hft_obs.Span.with_ "b" (fun () -> ()));
  let s = Hft_obs.Span.render () in
  let has sub =
    let nh = String.length s and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub s i nn = sub || go (i + 1)) in
    go 0
  in
  check "root present" true (has "a  ");
  check "child indented" true (has "\n  b  ");
  check "durations in ms" true (has "ms")

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                      *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  with_obs ~on:false @@ fun () ->
  Hft_obs.Registry.incr "c" ~by:9;
  Hft_obs.Registry.observe "t" 1.0;
  let x = Hft_obs.Span.with_ "s" (fun () -> 5) in
  Hft_obs.Span.add_attr "k" "v";
  check_int "with_ still returns the value" 5 x;
  check_int "no metric recorded" 0 (Hft_obs.Registry.count "c");
  check "no snapshot entries" true (Hft_obs.Registry.snapshot () = []);
  check "no spans recorded" true (Hft_obs.Span.roots () = [])

(* ------------------------------------------------------------------ *)
(* Export round-trips                                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_json_roundtrip () =
  with_obs @@ fun () ->
  Hft_obs.Registry.incr "hft.podem.backtracks" ~by:17;
  Hft_obs.Registry.observe "hft.flow.time" 0.25;
  let text = Hft_util.Json.to_string (Hft_obs.Export.metrics_json ()) in
  match Hft_util.Json.parse text with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Hft_util.Json.member "hft.podem.backtracks" doc with
     | Some m ->
       check "counter value survives" true
         (Hft_util.Json.member "value" m = Some (Hft_util.Json.Int 17))
     | None -> Alcotest.fail "counter missing from export");
    (match Hft_util.Json.member "hft.flow.time" doc with
     | Some m ->
       check "timer sum survives" true
         (Hft_util.Json.member "sum" m = Some (Hft_util.Json.Float 0.25))
     | None -> Alcotest.fail "timer missing from export")

let test_trace_json () =
  with_obs @@ fun () ->
  Hft_obs.Span.with_ "a" ~attrs:[ ("k", "v") ] (fun () ->
      Hft_obs.Span.with_ "b" (fun () -> ()));
  let text = Hft_util.Json.to_string (Hft_obs.Span.trace_to_json ()) in
  match Hft_util.Json.parse text with
  | Ok (Hft_util.Json.List [ root ]) ->
    check "root name" true
      (Hft_util.Json.member "name" root = Some (Hft_util.Json.String "a"));
    (match Hft_util.Json.member "children" root with
     | Some (Hft_util.Json.List [ _ ]) -> ()
     | _ -> Alcotest.fail "child span missing")
  | Ok _ -> Alcotest.fail "expected a one-root trace"
  | Error e -> Alcotest.fail e

let test_table_cells () =
  let open Hft_util.Json in
  check "int cell" true (Hft_obs.Table.cell_to_json "12" = Int 12);
  check "float cell" true (Hft_obs.Table.cell_to_json "1.5" = Float 1.5);
  check "percentage cell" true (Hft_obs.Table.cell_to_json "97.3%" = Float 0.973);
  check "string cell" true (Hft_obs.Table.cell_to_json "ewf" = String "ewf");
  match
    Hft_obs.Table.row_to_json ~title:"t" ~header:[ "bench"; "n" ]
      [ "ewf"; "34" ]
  with
  | Obj kvs ->
    check "title column" true (List.assoc_opt "table" kvs = Some (String "t"));
    check "typed cell" true (List.assoc_opt "n" kvs = Some (Int 34))
  | _ -> Alcotest.fail "row_to_json should build an object"

(* ------------------------------------------------------------------ *)
(* Flow instrumentation contract                                      *)
(* ------------------------------------------------------------------ *)

let test_flow_spans () =
  let g = Hft_cdfg.Paper_fig1.graph () in
  List.iter
    (fun (name, kind) ->
      with_obs @@ fun () ->
      ignore (Hft_core.Flow.synthesize ~width:4 kind g);
      match Hft_obs.Span.roots () with
      | [ root ] ->
        check_str
          (Printf.sprintf "%s root span" name)
          ("flow:" ^ name) (Hft_obs.Span.name root);
        check
          (Printf.sprintf "%s has >= 3 phase children" name)
          true
          (List.length (Hft_obs.Span.children root) >= 3);
        (* Partial-scan and BIST run a conventional baseline internally,
           so runs >= 1 but the root span is still the outer flow. *)
        check
          (Printf.sprintf "%s counted its run" name)
          true
          (Hft_obs.Registry.count "hft.flow.runs" >= 1);
        check
          (Printf.sprintf "%s timed its run" name)
          true
          (Hft_obs.Registry.value "hft.flow.time" >= 0.0
           && Hft_obs.Registry.count "hft.flow.time" >= 1)
      | roots ->
        Alcotest.failf "%s: expected one root span, got %d" name
          (List.length roots))
    Hft_core.Flow.flow_kinds

let () =
  Alcotest.run "hft_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge and timer" `Quick test_gauge_and_timer;
          Alcotest.test_case "time uses clock" `Quick test_time_uses_clock;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
        ] );
      ( "spans",
        [
          Alcotest.test_case "tree" `Quick test_span_tree;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "render" `Quick test_span_render;
        ] );
      ("disabled", [ Alcotest.test_case "no-op" `Quick test_disabled_noop ]);
      ( "export",
        [
          Alcotest.test_case "metrics json" `Quick test_metrics_json_roundtrip;
          Alcotest.test_case "trace json" `Quick test_trace_json;
          Alcotest.test_case "table cells" `Quick test_table_cells;
        ] );
      ("flow", [ Alcotest.test_case "phase spans" `Quick test_flow_spans ]);
    ]
